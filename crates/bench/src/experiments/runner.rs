//! The `report` runner: one driver for the whole experiment registry,
//! built on the shared run-plan layer (`crate::plan`).
//!
//! ```text
//! report --list                 # enumerate the registry
//! report fig8 table4            # run named experiments, text to stdout
//! report --all                  # run every golden experiment
//! report --json fig8            # JSON (escalate-report/v1) instead of text
//! report --out DIR --all        # one file per experiment instead of stdout
//! report --all --update         # regenerate the results/ golden corpus
//! report --all --check          # diff against results/, nonzero on drift
//! ```
//!
//! The selected experiments form a [`ReportPlan`] (one work unit per
//! experiment); `plan::execute` fans the units out over the thread pool
//! with an order-preserving collect, and one of four [`UnitSink`]s
//! renders the outputs sequentially in request order — so stdout,
//! per-file output, and golden checks are byte-identical to a serial run
//! (and the first failure in request order is the one reported).
//!
//! `--check`/`--update` operate on the golden corpus under `results/`
//! (override with `--results DIR` or `ESCALATE_RESULTS_DIR`); experiments
//! whose output is timing-dependent ([`Experiment::golden`] is `false`)
//! are skipped by `--all`, `--check` and `--update` but still runnable by
//! name. Flags accept both `--key value` and `--key=value`. Arguments
//! after `--` are forwarded to the experiments verbatim
//! (e.g. `report fig11 -- MobileNet`).

use super::{find, registry, ExpContext, ExpError, Experiment};
use crate::plan::{self, RunPlan, UnitOutput, UnitSink, WorkUnit};
use std::io::Write;
use std::path::PathBuf;

/// Parsed command line of the `report` runner.
#[derive(Debug, Default, Clone)]
pub struct ReportOptions {
    /// List the registry and exit.
    pub list: bool,
    /// Expand to every golden experiment.
    pub all: bool,
    /// Render JSON (`escalate-report/v1`) instead of text.
    pub json: bool,
    /// Compare rendered text against the golden corpus; report drift.
    pub check: bool,
    /// Rewrite the golden corpus from fresh runs.
    pub update: bool,
    /// Write one file per experiment into this directory instead of stdout.
    pub out_dir: Option<PathBuf>,
    /// Golden corpus directory (default: `results/` next to the workspace
    /// root, or `ESCALATE_RESULTS_DIR`).
    pub results_dir: Option<PathBuf>,
    /// Explicitly named experiments, in request order.
    pub names: Vec<String>,
    /// Positional arguments forwarded to the experiments (after `--`).
    pub args: Vec<String>,
}

impl ReportOptions {
    /// Parses runner arguments (without the program name). Valued flags
    /// accept both `--out DIR` and `--out=DIR`.
    ///
    /// # Errors
    ///
    /// Returns a usage message for unknown flags, missing flag values,
    /// values on boolean flags, or contradictory modes
    /// (`--check --update`).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, String> {
        let mut opts = ReportOptions::default();
        let mut it = argv.into_iter();
        while let Some(arg) = it.next() {
            // `--key=value` unfolds to the flag plus an inline value.
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
                _ => (arg, None),
            };
            let bool_flag = |dst: &mut bool| {
                if inline.is_some() {
                    return Err(format!("{flag} takes no value"));
                }
                *dst = true;
                Ok(())
            };
            match flag.as_str() {
                "--list" => bool_flag(&mut opts.list)?,
                "--all" => bool_flag(&mut opts.all)?,
                "--json" => bool_flag(&mut opts.json)?,
                "--check" => bool_flag(&mut opts.check)?,
                "--update" => bool_flag(&mut opts.update)?,
                "--out" => {
                    let dir = match inline {
                        Some(v) => v,
                        None => it.next().ok_or("--out requires a directory")?,
                    };
                    opts.out_dir = Some(PathBuf::from(dir));
                }
                "--results" => {
                    let dir = match inline {
                        Some(v) => v,
                        None => it.next().ok_or("--results requires a directory")?,
                    };
                    opts.results_dir = Some(PathBuf::from(dir));
                }
                "--" => {
                    opts.args.extend(it);
                    break;
                }
                f if f.starts_with('-') => {
                    return Err(format!("unknown flag {f:?} (see report --list)"));
                }
                name => opts.names.push(name.to_string()),
            }
        }
        if opts.check && opts.update {
            return Err("--check and --update are mutually exclusive".into());
        }
        if !opts.list && !opts.all && opts.names.is_empty() {
            return Err("nothing to do: name experiments, or pass --all or --list".into());
        }
        Ok(opts)
    }

    /// The golden corpus directory: `--results`, else
    /// `ESCALATE_RESULTS_DIR`, else `results/` at the workspace root.
    pub fn resolve_results_dir(&self) -> PathBuf {
        if let Some(dir) = &self.results_dir {
            return dir.clone();
        }
        if let Ok(dir) = std::env::var("ESCALATE_RESULTS_DIR") {
            if !dir.is_empty() {
                return PathBuf::from(dir);
            }
        }
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
    }
}

/// Resolves the experiment set a parsed command line selects.
fn select(opts: &ReportOptions) -> Result<Vec<&'static dyn Experiment>, ExpError> {
    let mut exps: Vec<&'static dyn Experiment> = Vec::new();
    if opts.all {
        exps.extend(registry().iter().copied().filter(|e| e.golden()));
    }
    for name in &opts.names {
        let exp = find(name).ok_or_else(|| {
            ExpError::Msg(format!("unknown experiment {name:?} (see report --list)"))
        })?;
        if (opts.check || opts.update) && !exp.golden() {
            return Err(ExpError::Msg(format!(
                "{name} is not golden-checked (timing-dependent output)"
            )));
        }
        if !exps.iter().any(|e| e.name() == exp.name()) {
            exps.push(exp);
        }
    }
    Ok(exps)
}

/// Reports the first diverging line of a drifted golden check.
fn first_drift(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!("first drift at line {}:\n  - {e}\n  + {a}", i + 1);
        }
    }
    let (el, al) = (expected.lines().count(), actual.lines().count());
    format!("line counts differ: golden {el}, current {al}")
}

/// Fixed master seed of the report plan — experiments derive their own
/// randomness internally, but every work unit still carries a seed per
/// the plan contract.
const REPORT_PLAN_SEED: u64 = 0x5eca_1a7e_9e37_79b9;

/// The experiment registry as a [`RunPlan`]: one work unit per selected
/// experiment, keyed by registry name.
struct ReportPlan {
    exps: Vec<&'static dyn Experiment>,
    ctx: ExpContext,
}

impl RunPlan for ReportPlan {
    fn name(&self) -> &str {
        "report"
    }

    fn units(&self) -> Result<Vec<WorkUnit>, ExpError> {
        Ok(self
            .exps
            .iter()
            .enumerate()
            .map(|(i, e)| WorkUnit {
                key: e.name().to_string(),
                seed: plan::unit_seed(REPORT_PLAN_SEED, i as u64),
                index: i,
            })
            .collect())
    }

    fn run_unit(&self, unit: &WorkUnit) -> Result<UnitOutput, ExpError> {
        self.exps[unit.index]
            .run(&self.ctx)
            .map(UnitOutput::from_table)
    }
}

/// `--check`: byte-diffs each experiment against its golden file.
struct CheckSink<'w> {
    out: &'w mut dyn Write,
    results_dir: PathBuf,
    clean: bool,
}

impl UnitSink for CheckSink<'_> {
    fn write_unit(&mut self, unit: &WorkUnit, out: UnitOutput) -> Result<(), ExpError> {
        let text = out.table.render_text();
        let golden_path = self.results_dir.join(format!("{}.txt", unit.key));
        match std::fs::read_to_string(&golden_path) {
            Ok(golden) if golden == text => {
                writeln!(self.out, "ok    {}", unit.key)?;
            }
            Ok(golden) => {
                self.clean = false;
                writeln!(self.out, "DRIFT {}", unit.key)?;
                writeln!(self.out, "{}", first_drift(&golden, &text))?;
            }
            Err(e) => {
                self.clean = false;
                writeln!(self.out, "DRIFT {} (no golden: {e})", unit.key)?;
            }
        }
        Ok(())
    }
}

/// `--update`: rewrites each experiment's golden file.
struct UpdateSink<'w> {
    out: &'w mut dyn Write,
    results_dir: PathBuf,
}

impl UnitSink for UpdateSink<'_> {
    fn write_unit(&mut self, unit: &WorkUnit, out: UnitOutput) -> Result<(), ExpError> {
        let golden_path = self.results_dir.join(format!("{}.txt", unit.key));
        std::fs::write(&golden_path, out.table.render_text())?;
        writeln!(self.out, "updated {}", golden_path.display())?;
        Ok(())
    }
}

/// `--out DIR`: one text/JSON file per experiment.
struct DirSink<'w> {
    out: &'w mut dyn Write,
    dir: PathBuf,
    json: bool,
}

impl UnitSink for DirSink<'_> {
    fn write_unit(&mut self, unit: &WorkUnit, out: UnitOutput) -> Result<(), ExpError> {
        let ext = if self.json { "json" } else { "txt" };
        let path = self.dir.join(format!("{}.{ext}", unit.key));
        let body = if self.json {
            out.table.render_json()
        } else {
            out.table.render_text()
        };
        std::fs::write(&path, body)?;
        writeln!(self.out, "wrote {}", path.display())?;
        Ok(())
    }
}

/// Default mode: text (blank-line separated) or JSON documents on stdout.
struct StreamSink<'w> {
    out: &'w mut dyn Write,
    json: bool,
    written: usize,
}

impl UnitSink for StreamSink<'_> {
    fn write_unit(&mut self, _unit: &WorkUnit, out: UnitOutput) -> Result<(), ExpError> {
        if self.json {
            self.out.write_all(out.table.render_json().as_bytes())?;
            writeln!(self.out)?;
        } else {
            if self.written > 0 {
                writeln!(self.out)?;
            }
            self.out.write_all(out.table.render_text().as_bytes())?;
        }
        self.written += 1;
        Ok(())
    }
}

/// Drives the registry per `opts`, writing report output to `out`.
/// Returns `true` when everything (including any `--check`) passed.
///
/// # Errors
///
/// Returns an [`ExpError`] when an experiment fails or a file cannot be
/// read or written. Golden drift is a `false` return, not an error.
pub fn run_report(opts: &ReportOptions, out: &mut dyn Write) -> Result<bool, ExpError> {
    if opts.list {
        writeln!(
            out,
            "{:<16} {:<18} {:<6} summary",
            "name", "paper anchor", "golden"
        )?;
        for e in registry() {
            writeln!(
                out,
                "{:<16} {:<18} {:<6} {}",
                e.name(),
                e.paper_anchor(),
                if e.golden() { "yes" } else { "no" },
                e.summary()
            )?;
        }
        return Ok(true);
    }

    let exps = select(opts)?;
    let selected = exps.len();
    let ctx = ExpContext {
        args: opts.args.clone(),
        ..ExpContext::default()
    };
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir)?;
    }
    let results_dir = opts.resolve_results_dir();
    if opts.update {
        std::fs::create_dir_all(&results_dir)?;
    }
    let plan = ReportPlan { exps, ctx };

    let clean = if opts.check {
        let clean = {
            let mut sink = CheckSink {
                out: &mut *out,
                results_dir: results_dir.clone(),
                clean: true,
            };
            plan::execute(&plan, &mut sink)?;
            sink.clean
        };
        writeln!(
            out,
            "{}: {} experiment(s) checked against {}",
            if clean { "PASS" } else { "FAIL" },
            selected,
            results_dir.display()
        )?;
        clean
    } else if opts.update {
        let mut sink = UpdateSink {
            out: &mut *out,
            results_dir,
        };
        plan::execute(&plan, &mut sink)?;
        true
    } else if let Some(dir) = &opts.out_dir {
        let mut sink = DirSink {
            out: &mut *out,
            dir: dir.clone(),
            json: opts.json,
        };
        plan::execute(&plan, &mut sink)?;
        true
    } else {
        let mut sink = StreamSink {
            out: &mut *out,
            json: opts.json,
            written: 0,
        };
        plan::execute(&plan, &mut sink)?;
        true
    };
    Ok(clean)
}

/// Entry point shared by the `report` binary and `escalate report`:
/// parses `argv` (without the program name) and maps failures and golden
/// drift to a nonzero exit.
pub fn report_main<I: IntoIterator<Item = String>>(argv: I) -> std::process::ExitCode {
    let opts = match ReportOptions::parse(argv) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("usage: report [--list] [--all] [--json] [--check | --update] [--out DIR] [--results DIR] [NAME ...] [-- ARGS]");
            eprintln!("error: {msg}");
            return std::process::ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    match run_report(&opts, &mut stdout) {
        Ok(true) => std::process::ExitCode::SUCCESS,
        Ok(false) => std::process::ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_unknown_flags_and_empty_invocations() {
        assert!(ReportOptions::parse(["--bogus".to_string()]).is_err());
        assert!(ReportOptions::parse(Vec::new()).is_err());
        assert!(
            ReportOptions::parse(["--check".into(), "--update".into(), "--all".into()]).is_err()
        );
    }

    #[test]
    fn parse_collects_names_flags_and_forwarded_args() {
        let o = ReportOptions::parse(
            [
                "--json",
                "fig8",
                "table4",
                "--out",
                "/tmp/x",
                "--",
                "MobileNet",
            ]
            .map(String::from),
        )
        .expect("valid");
        assert!(o.json && !o.all && !o.check);
        assert_eq!(o.names, ["fig8", "table4"]);
        assert_eq!(o.out_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(o.args, ["MobileNet"]);
    }

    #[test]
    fn parse_accepts_key_equals_value_forms() {
        let o =
            ReportOptions::parse(["--out=/tmp/x", "--results=/tmp/r", "fig8"].map(String::from))
                .expect("valid");
        assert_eq!(o.out_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(
            o.results_dir.as_deref(),
            Some(std::path::Path::new("/tmp/r"))
        );
        assert_eq!(o.names, ["fig8"]);
        // Boolean flags reject inline values instead of swallowing them.
        let e = ReportOptions::parse(["--check=yes".to_string()]).unwrap_err();
        assert!(e.contains("takes no value"), "{e}");
        // A directory value containing '=' survives (only the first '='
        // splits).
        let o = ReportOptions::parse(["--out=/tmp/a=b", "fig8"].map(String::from)).expect("valid");
        assert_eq!(o.out_dir.as_deref(), Some(std::path::Path::new("/tmp/a=b")));
    }

    #[test]
    fn select_skips_non_golden_under_all_but_rejects_them_by_name() {
        let all = ReportOptions {
            all: true,
            check: true,
            ..ReportOptions::default()
        };
        let exps = select(&all).expect("select");
        assert!(exps.iter().all(|e| e.golden()));
        assert_eq!(exps.len(), registry().iter().filter(|e| e.golden()).count());

        let by_name = ReportOptions {
            check: true,
            names: vec!["bench_sim".into()],
            ..ReportOptions::default()
        };
        assert!(select(&by_name).is_err());
    }

    #[test]
    fn report_plan_units_mirror_the_selection_order() {
        let exps = select(&ReportOptions {
            names: vec!["fig8".into(), "table4".into()],
            ..ReportOptions::default()
        })
        .expect("select");
        let plan = ReportPlan {
            exps,
            ctx: ExpContext::default(),
        };
        let units = plan.units().expect("units");
        let keys: Vec<&str> = units.iter().map(|u| u.key.as_str()).collect();
        assert_eq!(keys, ["fig8", "table4"]);
        assert_ne!(units[0].seed, units[1].seed);
        assert_eq!(units[1].index, 1);
    }

    #[test]
    fn list_names_every_experiment() {
        let opts = ReportOptions {
            list: true,
            ..ReportOptions::default()
        };
        let mut buf = Vec::new();
        assert!(run_report(&opts, &mut buf).expect("list"));
        let text = String::from_utf8(buf).expect("utf8");
        for e in registry() {
            assert!(text.contains(e.name()), "{} missing from --list", e.name());
        }
    }

    #[test]
    fn first_drift_pinpoints_the_line() {
        let msg = first_drift("a\nb\nc\n", "a\nX\nc\n");
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("- b") && msg.contains("+ X"), "{msg}");
        let msg = first_drift("a\n", "a\nb\n");
        assert!(msg.contains("line counts differ"), "{msg}");
    }
}
