//! The `report` runner: one driver for the whole experiment registry.
//!
//! ```text
//! report --list                 # enumerate the registry
//! report fig8 table4            # run named experiments, text to stdout
//! report --all                  # run every golden experiment
//! report --json fig8            # JSON (escalate-report/v1) instead of text
//! report --out DIR --all        # one file per experiment instead of stdout
//! report --all --update         # regenerate the results/ golden corpus
//! report --all --check          # diff against results/, nonzero on drift
//! ```
//!
//! `--check`/`--update` operate on the golden corpus under `results/`
//! (override with `--results DIR` or `ESCALATE_RESULTS_DIR`); experiments
//! whose output is timing-dependent ([`Experiment::golden`] is `false`)
//! are skipped by `--all`, `--check` and `--update` but still runnable by
//! name. Arguments after `--` are forwarded to the experiments verbatim
//! (e.g. `report fig11 -- MobileNet`).

use super::{find, registry, ExpContext, ExpError, Experiment, Table};
use rayon::prelude::*;
use std::io::Write;
use std::path::PathBuf;

/// Parsed command line of the `report` runner.
#[derive(Debug, Default, Clone)]
pub struct ReportOptions {
    /// List the registry and exit.
    pub list: bool,
    /// Expand to every golden experiment.
    pub all: bool,
    /// Render JSON (`escalate-report/v1`) instead of text.
    pub json: bool,
    /// Compare rendered text against the golden corpus; report drift.
    pub check: bool,
    /// Rewrite the golden corpus from fresh runs.
    pub update: bool,
    /// Write one file per experiment into this directory instead of stdout.
    pub out_dir: Option<PathBuf>,
    /// Golden corpus directory (default: `results/` next to the workspace
    /// root, or `ESCALATE_RESULTS_DIR`).
    pub results_dir: Option<PathBuf>,
    /// Explicitly named experiments, in request order.
    pub names: Vec<String>,
    /// Positional arguments forwarded to the experiments (after `--`).
    pub args: Vec<String>,
}

impl ReportOptions {
    /// Parses runner arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage message for unknown flags, missing flag values, or
    /// contradictory modes (`--check --update`).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, String> {
        let mut opts = ReportOptions::default();
        let mut it = argv.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--list" => opts.list = true,
                "--all" => opts.all = true,
                "--json" => opts.json = true,
                "--check" => opts.check = true,
                "--update" => opts.update = true,
                "--out" => {
                    let dir = it.next().ok_or("--out requires a directory")?;
                    opts.out_dir = Some(PathBuf::from(dir));
                }
                "--results" => {
                    let dir = it.next().ok_or("--results requires a directory")?;
                    opts.results_dir = Some(PathBuf::from(dir));
                }
                "--" => {
                    opts.args.extend(it);
                    break;
                }
                flag if flag.starts_with('-') => {
                    return Err(format!("unknown flag {flag:?} (see report --list)"));
                }
                name => opts.names.push(name.to_string()),
            }
        }
        if opts.check && opts.update {
            return Err("--check and --update are mutually exclusive".into());
        }
        if !opts.list && !opts.all && opts.names.is_empty() {
            return Err("nothing to do: name experiments, or pass --all or --list".into());
        }
        Ok(opts)
    }

    /// The golden corpus directory: `--results`, else
    /// `ESCALATE_RESULTS_DIR`, else `results/` at the workspace root.
    pub fn resolve_results_dir(&self) -> PathBuf {
        if let Some(dir) = &self.results_dir {
            return dir.clone();
        }
        if let Ok(dir) = std::env::var("ESCALATE_RESULTS_DIR") {
            if !dir.is_empty() {
                return PathBuf::from(dir);
            }
        }
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
    }
}

/// Resolves the experiment set a parsed command line selects.
fn select(opts: &ReportOptions) -> Result<Vec<&'static dyn Experiment>, ExpError> {
    let mut exps: Vec<&'static dyn Experiment> = Vec::new();
    if opts.all {
        exps.extend(registry().iter().copied().filter(|e| e.golden()));
    }
    for name in &opts.names {
        let exp = find(name).ok_or_else(|| {
            ExpError::Msg(format!("unknown experiment {name:?} (see report --list)"))
        })?;
        if (opts.check || opts.update) && !exp.golden() {
            return Err(ExpError::Msg(format!(
                "{name} is not golden-checked (timing-dependent output)"
            )));
        }
        if !exps.iter().any(|e| e.name() == exp.name()) {
            exps.push(exp);
        }
    }
    Ok(exps)
}

/// Reports the first diverging line of a drifted golden check.
fn first_drift(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!("first drift at line {}:\n  - {e}\n  + {a}", i + 1);
        }
    }
    let (el, al) = (expected.lines().count(), actual.lines().count());
    format!("line counts differ: golden {el}, current {al}")
}

/// Drives the registry per `opts`, writing report output to `out`.
/// Returns `true` when everything (including any `--check`) passed.
///
/// # Errors
///
/// Returns an [`ExpError`] when an experiment fails or a file cannot be
/// read or written. Golden drift is a `false` return, not an error.
pub fn run_report(opts: &ReportOptions, out: &mut dyn Write) -> Result<bool, ExpError> {
    if opts.list {
        writeln!(
            out,
            "{:<16} {:<18} {:<6} summary",
            "name", "paper anchor", "golden"
        )?;
        for e in registry() {
            writeln!(
                out,
                "{:<16} {:<18} {:<6} {}",
                e.name(),
                e.paper_anchor(),
                if e.golden() { "yes" } else { "no" },
                e.summary()
            )?;
        }
        return Ok(true);
    }

    let exps = select(opts)?;
    let ctx = ExpContext {
        args: opts.args.clone(),
        ..ExpContext::default()
    };
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir)?;
    }
    let results_dir = opts.resolve_results_dir();
    if opts.update {
        std::fs::create_dir_all(&results_dir)?;
    }

    // Experiments are independent, so a multi-experiment selection runs
    // them across the thread pool; the expensive shared step (model
    // compression) is single-flighted behind the artifact cache, so
    // concurrent experiments block on one compression instead of
    // repeating it. Collection is order-preserving and all rendering
    // below stays sequential in request order, so stdout, per-file
    // output, and golden checks are byte-identical to a serial run (the
    // first failure in request order is the one reported).
    let tables: Vec<Result<Table, ExpError>> = if exps.len() > 1 {
        exps.par_iter().map(|exp| exp.run(&ctx)).collect()
    } else {
        exps.iter().map(|exp| exp.run(&ctx)).collect()
    };

    let mut clean = true;
    for (i, (exp, table)) in exps.iter().zip(tables).enumerate() {
        let table = table?;
        let text = table.render_text();
        if opts.check {
            let golden_path = results_dir.join(format!("{}.txt", exp.name()));
            match std::fs::read_to_string(&golden_path) {
                Ok(golden) if golden == text => {
                    writeln!(out, "ok    {}", exp.name())?;
                }
                Ok(golden) => {
                    clean = false;
                    writeln!(out, "DRIFT {}", exp.name())?;
                    writeln!(out, "{}", first_drift(&golden, &text))?;
                }
                Err(e) => {
                    clean = false;
                    writeln!(out, "DRIFT {} (no golden: {e})", exp.name())?;
                }
            }
        } else if opts.update {
            let golden_path = results_dir.join(format!("{}.txt", exp.name()));
            std::fs::write(&golden_path, &text)?;
            writeln!(out, "updated {}", golden_path.display())?;
        } else if let Some(dir) = &opts.out_dir {
            let ext = if opts.json { "json" } else { "txt" };
            let path = dir.join(format!("{}.{ext}", exp.name()));
            let body = if opts.json { table.render_json() } else { text };
            std::fs::write(&path, body)?;
            writeln!(out, "wrote {}", path.display())?;
        } else if opts.json {
            out.write_all(table.render_json().as_bytes())?;
            writeln!(out)?;
        } else {
            if i > 0 {
                writeln!(out)?;
            }
            out.write_all(text.as_bytes())?;
        }
    }
    if opts.check {
        writeln!(
            out,
            "{}: {} experiment(s) checked against {}",
            if clean { "PASS" } else { "FAIL" },
            exps.len(),
            results_dir.display()
        )?;
    }
    Ok(clean)
}

/// Entry point shared by the `report` binary and `escalate report`:
/// parses `argv` (without the program name) and maps failures and golden
/// drift to a nonzero exit.
pub fn report_main<I: IntoIterator<Item = String>>(argv: I) -> std::process::ExitCode {
    let opts = match ReportOptions::parse(argv) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("usage: report [--list] [--all] [--json] [--check | --update] [--out DIR] [--results DIR] [NAME ...] [-- ARGS]");
            eprintln!("error: {msg}");
            return std::process::ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    match run_report(&opts, &mut stdout) {
        Ok(true) => std::process::ExitCode::SUCCESS,
        Ok(false) => std::process::ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_unknown_flags_and_empty_invocations() {
        assert!(ReportOptions::parse(["--bogus".to_string()]).is_err());
        assert!(ReportOptions::parse(Vec::new()).is_err());
        assert!(
            ReportOptions::parse(["--check".into(), "--update".into(), "--all".into()]).is_err()
        );
    }

    #[test]
    fn parse_collects_names_flags_and_forwarded_args() {
        let o = ReportOptions::parse(
            [
                "--json",
                "fig8",
                "table4",
                "--out",
                "/tmp/x",
                "--",
                "MobileNet",
            ]
            .map(String::from),
        )
        .expect("valid");
        assert!(o.json && !o.all && !o.check);
        assert_eq!(o.names, ["fig8", "table4"]);
        assert_eq!(o.out_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(o.args, ["MobileNet"]);
    }

    #[test]
    fn select_skips_non_golden_under_all_but_rejects_them_by_name() {
        let all = ReportOptions {
            all: true,
            check: true,
            ..ReportOptions::default()
        };
        let exps = select(&all).expect("select");
        assert!(exps.iter().all(|e| e.golden()));
        assert_eq!(exps.len(), registry().iter().filter(|e| e.golden()).count());

        let by_name = ReportOptions {
            check: true,
            names: vec!["bench_sim".into()],
            ..ReportOptions::default()
        };
        assert!(select(&by_name).is_err());
    }

    #[test]
    fn list_names_every_experiment() {
        let opts = ReportOptions {
            list: true,
            ..ReportOptions::default()
        };
        let mut buf = Vec::new();
        assert!(run_report(&opts, &mut buf).expect("list"));
        let text = String::from_utf8(buf).expect("utf8");
        for e in registry() {
            assert!(text.contains(e.name()), "{} missing from --list", e.name());
        }
    }

    #[test]
    fn first_drift_pinpoints_the_line() {
        let msg = first_drift("a\nb\nc\n", "a\nX\nc\n");
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("- b") && msg.contains("+ X"), "{msg}");
        let msg = first_drift("a\n", "a\nb\n");
        assert!(msg.contains("line counts differ"), "{msg}");
    }
}
