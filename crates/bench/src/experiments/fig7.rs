//! **Figure 7**: model size vs accuracy for uniform, hybrid and
//! basis-only post-training quantization of decomposed ResNet18.
//!
//! - *uniform*: the same bit width for basis kernels and coefficients;
//! - *hybrid*: basis fixed at 8 bits, coefficients swept (the paper's
//!   policy; 2 bits uses the ternary path);
//! - *basis-only*: coefficients kept at fp32, basis swept.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::tline;
use escalate_core::pipeline::accuracy_proxy;
use escalate_core::quant::{quantize_linear, quantize_linear_grouped, TernaryCoeffs};
use escalate_core::{decompose, Decomposed};
use escalate_models::{synth, LayerShape, ModelProfile};
use escalate_tensor::Tensor;

struct PolicyPoint {
    bits: u32,
    size_mb: f64,
    error: f64,
}

/// Registry entry for Figure 7.
pub struct Fig7;

impl Experiment for Fig7 {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn paper_anchor(&self) -> &'static str {
        "Figure 7"
    }

    fn summary(&self) -> &'static str {
        "quantization-policy sweep (uniform/hybrid/basis-only) on ResNet18"
    }

    fn run(&self, _ctx: &ExpContext) -> Result<Table, ExpError> {
        let profile = ModelProfile::for_model("ResNet18").expect("known model");
        let model = profile.model();
        let layers: Vec<LayerShape> = model
            .conv_layers()
            .filter(|l| l.is_decomposable())
            .cloned()
            .collect();

        // Decompose every layer once (M = 6), then post-training-quantize
        // under each policy.
        let decomposed: Vec<(LayerShape, Tensor, Decomposed)> = layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let w = synth::weights(l, 6, 0.05, synth::layer_seed(42, i, 0));
                let m = 6.min(l.r * l.s);
                let d = decompose(&w, m)?;
                Ok((l.clone(), w, d))
            })
            .collect::<Result<_, escalate_core::EscalateError>>()?;

        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Figure 7: quantization policy sweep on decomposed ResNet18 (CIFAR-10)"
        );
        tline!(t);
        tline!(
            t,
            "{:<12} {:>5} {:>10} {:>9} {:>12}",
            "Policy",
            "bits",
            "size(MB)",
            "err",
            "proxy top-1"
        );
        for policy in ["uniform", "hybrid", "basis-only"] {
            for bits in [2u32, 3, 4, 6, 8] {
                let p = evaluate(&decomposed, policy, bits)?;
                let proxy = accuracy_proxy(profile.baseline_top1, p.error);
                tline!(
                    t,
                    "{:<12} {:>5} {:>10.3} {:>9.4} {:>12.2}",
                    policy,
                    p.bits,
                    p.size_mb,
                    p.error,
                    proxy
                );
                t.push_record(Record::new([
                    ("policy", Cell::from(policy)),
                    ("bits", Cell::from(u64::from(p.bits))),
                    ("size_mb", p.size_mb.into()),
                    ("weight_error", p.error.into()),
                    ("proxy_top1", proxy.into()),
                ]));
            }
            tline!(t);
        }
        tline!(
            t,
            "Expected shape (paper): hybrid tracks uniform's size while holding accuracy"
        );
        tline!(
            t,
            "near the basis-only (fp32-coefficient) curve — the frequently-reused basis"
        );
        tline!(t, "kernels need high precision, the coefficients do not.");
        Ok(t)
    }
}

fn evaluate(
    decomposed: &[(LayerShape, Tensor, Decomposed)],
    policy: &str,
    bits: u32,
) -> Result<PolicyPoint, ExpError> {
    let mut total_bits = 0usize;
    let mut err_weighted = 0.0f64;
    let mut params = 0usize;
    for (_, w, d) in decomposed {
        let (basis_bits, coeff_bits) = match policy {
            "uniform" => (bits, bits),
            "hybrid" => (8, bits),
            "basis-only" => (bits, 32),
            other => unreachable!("unknown policy {other}"),
        };
        let (basis_q, basis_sz) = quantize_linear(&d.basis, basis_bits)?;
        let (coeffs_q, coeff_sz) = if coeff_bits == 32 {
            (d.coeffs.clone(), d.coeffs.len() * 32)
        } else if coeff_bits == 2 {
            // 2-bit coefficients use the ternary path with per-filter
            // scales (Eq. 4), as in the paper.
            let tern = TernaryCoeffs::ternarize(&d.coeffs, 0.05)?;
            let sz = escalate_core::pipeline::ternary_storage_bits(&tern);
            (tern.dequantize(), sz)
        } else {
            // One scale per output-channel slice, matching the per-filter
            // scaling of Eq. (4).
            let slice_len = d.c() * d.m();
            quantize_linear_grouped(&d.coeffs, coeff_bits, slice_len)?
        };
        let q = Decomposed {
            basis: basis_q,
            coeffs: coeffs_q,
            captured_energy: 1.0,
        };
        let e = w.relative_error(&q.reconstruct()) as f64;
        err_weighted += e * w.len() as f64;
        params += w.len();
        total_bits += basis_sz + coeff_sz;
    }
    Ok(PolicyPoint {
        bits,
        size_mb: total_bits as f64 / 8.0 / (1024.0 * 1024.0),
        error: err_weighted / params as f64,
    })
}
