//! Shared run context handed to every registered experiment.

use escalate_sim::SimConfig;

/// Everything an [`super::Experiment`] needs to run: the simulator
/// configuration, the number of input seeds to average, and any
/// positional arguments forwarded from the invoking binary (e.g. the
/// model override of `fig11`, or `bench_sim`'s output path).
/// Compression always goes through the per-process
/// [`crate::compress_cached`] artifact cache, so a multi-experiment
/// report pays each `(model, config)` compression once.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Simulator configuration (experiments that sweep `m` derive their
    /// own per-point configs from this baseline).
    pub sim: SimConfig,
    /// Input seeds averaged per measurement (`ESCALATE_SEEDS` /
    /// `--seeds`); experiments that pin a different count for a specific
    /// study keep their historical value.
    pub seeds: u64,
    /// Positional arguments forwarded verbatim from the caller.
    pub args: Vec<String>,
}

impl Default for ExpContext {
    fn default() -> Self {
        ExpContext {
            sim: SimConfig::default(),
            seeds: crate::input_seeds(),
            args: Vec::new(),
        }
    }
}

impl ExpContext {
    /// The first positional argument, or `default` — the convention the
    /// model-overridable experiments (`fig10_layers`, `fig11`) use.
    pub fn arg_or<'a>(&'a self, default: &'a str) -> &'a str {
        self.args.first().map_or(default, String::as_str)
    }
}
