//! Shared textual renderers for the one-shot CLI and the serve daemon.
//!
//! The daemon's acceptance bar is that a served job's output is
//! bit-identical to the equivalent one-shot command, so the table
//! rendering lives here — one copy, two callers — instead of being
//! duplicated (and drifting) between `escalate simulate` and
//! `escalate serve`.

use crate::ModelRun;
use escalate_core::pipeline::accuracy_proxy;
use escalate_core::ModelCompression;
use escalate_sim::SimConfig;

/// Renders the four-accelerator comparison table `escalate simulate`
/// prints (design / cycles / latency / energy / DRAM / speedup rows).
pub fn render_simulate(run: &ModelRun, cfg: &SimConfig) -> String {
    let mut out = format!(
        "{:<10} {:>12} {:>12} {:>12} {:>10} {:>10}\n",
        "design", "cycles", "latency(ms)", "energy(mJ)", "DRAM(MB)", "vs Eyeriss"
    );
    for r in [&run.eyeriss, &run.scnn, &run.sparten, &run.escalate] {
        out.push_str(&format!(
            "{:<10} {:>12.0} {:>12.4} {:>12.4} {:>10.2} {:>9.2}x\n",
            r.name,
            r.cycles,
            r.cycles / (cfg.frequency_mhz * 1e3),
            r.energy_pj * 1e-9,
            r.dram_bytes / 1e6,
            run.speedup_over_eyeriss(r),
        ));
    }
    // The pipeline section appears only when a pipelined schedule actually
    // ran — a serial run's bytes stay exactly what they were before the
    // schedule abstraction existed (the goldens pin this).
    if let Some(p) = &run.escalate.first_seed_stats.pipeline {
        out.push_str(&format!(
            "\npipeline: {} stage(s), interval {} cycles, latency {} cycles, \
             stall {} cycles, {} spilled boundary(ies), peak handoff {} B\n",
            p.stages,
            p.interval_cycles,
            p.latency_cycles,
            p.stall_cycles,
            p.spilled_boundaries,
            p.peak_buffer_bytes
        ));
    }
    out
}

/// Renders the `escalate compress` report: the optional per-layer table
/// (`layers == true`) followed by the one-line summary.
pub fn render_compress(
    model: &str,
    baseline_top1: f64,
    m: usize,
    result: &ModelCompression,
    layers: bool,
) -> String {
    let mut out = String::new();
    if layers {
        out.push_str(&format!(
            "{:<24} {:>10} {:>10} {:>8} {:>8}\n",
            "layer", "params", "bits", "spar%", "ratio"
        ));
        for l in &result.layers {
            out.push_str(&format!(
                "{:<24} {:>10} {:>10} {:>7.1}% {:>7.1}x\n",
                l.name,
                l.original_params,
                l.compressed_bits,
                l.coeff_sparsity() * 100.0,
                l.compression_ratio()
            ));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "{} (M={}): {:.2}x compression, {:.3} MB, {:.2}% sparsity, {:.2}% pruned, proxy top-1 {:.2}%\n",
        model,
        m,
        result.compression_ratio(),
        result.compressed_size_mb(),
        result.coeff_sparsity() * 100.0,
        result.pruning_ratio() * 100.0,
        accuracy_proxy(baseline_top1, result.mean_weight_error()),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use escalate_models::ModelProfile;

    #[test]
    fn simulate_table_has_all_four_designs_in_row_order() {
        let profile = ModelProfile::for_model("MobileNet").unwrap();
        let cfg = SimConfig::default();
        let run = crate::run_model(&profile, &cfg, 1).unwrap();
        let out = render_simulate(&run, &cfg);
        let rows: Vec<&str> = out.lines().collect();
        assert_eq!(rows.len(), 5, "header plus one row per design:\n{out}");
        for (row, name) in rows[1..]
            .iter()
            .zip(["Eyeriss", "SCNN", "SparTen", "ESCALATE"])
        {
            assert!(row.starts_with(name), "expected {name} in {row:?}");
        }
    }

    #[test]
    fn compress_summary_names_the_model_and_ratio() {
        let profile = ModelProfile::for_model("MobileNet").unwrap();
        let cfg = escalate_core::pipeline::CompressionConfig::default();
        let artifacts = crate::compress(&profile, &cfg).unwrap();
        let result = ModelCompression {
            model_name: profile.name.to_string(),
            layers: artifacts.iter().map(|a| a.stats.clone()).collect(),
        };
        let brief = render_compress(&profile.name, profile.baseline_top1, cfg.m, &result, false);
        assert!(brief.starts_with("MobileNet (M=6):"), "{brief}");
        let detailed = render_compress(&profile.name, profile.baseline_top1, cfg.m, &result, true);
        assert!(detailed.contains("layer"), "{detailed}");
        assert!(detailed.ends_with(&brief), "the summary line is shared");
    }
}
