#![warn(missing_docs)]

//! Shared experiment harness for regenerating the paper's tables and
//! figures.
//!
//! Each table/figure has a dedicated binary in `src/bin/` (`table1`,
//! `fig7`–`fig13`, `table4`, plus the ablation studies); this library
//! holds the common plumbing: compressing a model, building the
//! accelerator workloads, running all four simulators over multiple input
//! seeds, and attaching energy breakdowns.
//!
//! Orchestration lives in two layers: [`plan`] is the shared run-plan
//! machinery (work-unit enumeration, deterministic parallel execution,
//! output sinks with JSONL resume), and [`experiments`]/[`sweep`] are its
//! two consumers — the paper's experiment registry and the design-space
//! sweep behind `escalate sweep`.

pub mod cache;
pub mod experiments;
pub mod plan;
pub mod render;
pub mod sweep;

use cache::SingleFlightCache;
use escalate_baselines::{BaselineSim, BaselineWorkload, Eyeriss, LayerModel, Scnn, SparTen};
use escalate_core::pipeline::CompressionConfig;
use escalate_core::{compress_model_artifacts, CompressedLayer, EscalateError};
use escalate_energy::{layer_energy, model_energy, BufferCaps, EnergyBreakdown, UnitEnergy};
use escalate_models::ModelProfile;
use escalate_sim::{Accelerator, Escalate, ModelStats, SimConfig, Workload};
use rayon::prelude::*;
use std::sync::{Arc, OnceLock};

/// Default number of random input samples averaged per experiment (the
/// paper uses 10; see §5.2.1).
pub const DEFAULT_INPUT_SEEDS: u64 = 10;

/// Environment variable overriding [`input_seeds`].
pub const SEEDS_ENV: &str = "ESCALATE_SEEDS";

/// Number of input seeds experiments average over: the `ESCALATE_SEEDS`
/// environment variable when set (and positive), else
/// [`DEFAULT_INPUT_SEEDS`]. An invalid value (garbage, `0`) earns a
/// one-line stderr warning before the default applies — it is never
/// swallowed silently. The CLI's `--seeds` flag overrides both.
pub fn input_seeds() -> u64 {
    escalate_core::par::positive_env(SEEDS_ENV).unwrap_or(DEFAULT_INPUT_SEEDS)
}

/// One accelerator's averaged result on one model.
#[derive(Debug, Clone)]
pub struct AccelRun {
    /// Accelerator name.
    pub name: String,
    /// Mean cycles over the input seeds.
    pub cycles: f64,
    /// Mean total DRAM bytes.
    pub dram_bytes: f64,
    /// Mean total energy (pJ).
    pub energy_pj: f64,
    /// Full per-layer stats of the **first seed only** — deliberately not
    /// a mean: layer-wise figures need one concrete per-layer trace
    /// (integer cycle/traffic counts of a real run), and a component-wise
    /// average of traces would be a trace of no run at all. The field name
    /// says so; the seed-averaged scalars live in
    /// [`AccelRun::cycles`]/[`AccelRun::dram_bytes`]/[`AccelRun::energy_pj`].
    pub first_seed_stats: ModelStats,
    /// Component-wise mean energy breakdown over the input seeds; its
    /// components sum to [`AccelRun::energy_pj`].
    pub energy: EnergyBreakdown,
}

/// All four accelerators' results on one model.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// Model name.
    pub model: String,
    /// ESCALATE.
    pub escalate: AccelRun,
    /// Eyeriss (the normalization baseline).
    pub eyeriss: AccelRun,
    /// SCNN.
    pub scnn: AccelRun,
    /// SparTen.
    pub sparten: AccelRun,
}

impl ModelRun {
    /// Speedup of an accelerator over Eyeriss.
    ///
    /// # Panics
    ///
    /// Panics if `run` reports zero cycles — every simulated layer costs
    /// at least one cycle, so a zero here is a harness bug that must not
    /// be papered over with a fabricated ratio.
    pub fn speedup_over_eyeriss(&self, run: &AccelRun) -> f64 {
        assert!(
            run.cycles > 0.0,
            "{}: zero-cycle run cannot be normalized",
            run.name
        );
        self.eyeriss.cycles / run.cycles
    }

    /// Energy efficiency (inverse energy) normalized to Eyeriss.
    ///
    /// # Panics
    ///
    /// Panics if `run` reports zero energy (see
    /// [`ModelRun::speedup_over_eyeriss`]).
    pub fn efficiency_over_eyeriss(&self, run: &AccelRun) -> f64 {
        assert!(
            run.energy_pj > 0.0,
            "{}: zero-energy run cannot be normalized",
            run.name
        );
        self.eyeriss.energy_pj / run.energy_pj
    }

    /// DRAM accesses normalized to ESCALATE (Figure 9's axis).
    ///
    /// # Panics
    ///
    /// Panics if the ESCALATE run moved zero DRAM bytes (see
    /// [`ModelRun::speedup_over_eyeriss`]).
    pub fn dram_vs_escalate(&self, run: &AccelRun) -> f64 {
        assert!(
            self.escalate.dram_bytes > 0.0,
            "ESCALATE run moved no DRAM bytes; cannot normalize"
        );
        run.dram_bytes / self.escalate.dram_bytes
    }
}

/// Compresses a model once (the expensive step shared by all harnesses).
///
/// # Errors
///
/// Propagates compression failures.
pub fn compress(
    profile: &ModelProfile,
    cfg: &CompressionConfig,
) -> Result<Vec<CompressedLayer>, EscalateError> {
    compress_model_artifacts(profile, cfg)
}

/// Cache key for [`compress_cached`]: the model name, the profile
/// fingerprint (so two *different* networks that share a name — e.g. two
/// `@file` descriptions both called "custom" — never collide), plus every
/// [`CompressionConfig`] field (floats by bit pattern).
type CacheKey = (String, u64, usize, u32, usize, u32, usize, u64);

fn cache_key(profile: &ModelProfile, cfg: &CompressionConfig) -> CacheKey {
    (
        profile.name.clone(),
        profile.fingerprint(),
        cfg.m,
        cfg.basis_bits,
        cfg.weight_rank,
        cfg.weight_noise.to_bits(),
        cfg.qat_epochs,
        cfg.seed,
    )
}

/// Environment variable bounding the artifact cache
/// ([`DEFAULT_CACHE_CAP`] when unset; invalid/zero values warn and fall
/// back, matching [`SEEDS_ENV`]).
pub const CACHE_CAP_ENV: &str = "ESCALATE_CACHE_CAP";

/// Default artifact-cache capacity: generous for one-shot grids (the full
/// experiment registry visits far fewer distinct `(model, config)` pairs)
/// while keeping a long-running daemon's memory bounded.
pub const DEFAULT_CACHE_CAP: usize = 32;

type ArtifactCache = SingleFlightCache<CacheKey, Arc<Vec<CompressedLayer>>>;

fn artifact_cache() -> &'static ArtifactCache {
    static CACHE: OnceLock<ArtifactCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        let cap = escalate_core::par::positive_env(CACHE_CAP_ENV)
            .map_or(DEFAULT_CACHE_CAP, |v| v as usize);
        SingleFlightCache::new(cap)
    })
}

/// Re-bounds the process-wide artifact cache (`0` = unbounded), evicting
/// down to the new capacity immediately; evictions are counted on the
/// installed metrics recorder (`bench.cache_evictions`). Returns the
/// number of entries evicted. The daemon's `--cache` flag lands here.
pub fn set_artifact_cache_capacity(capacity: usize) -> u64 {
    let evicted = artifact_cache().set_capacity(capacity);
    if evicted > 0 {
        ARTIFACT_EVICTIONS.fetch_add(evicted, std::sync::atomic::Ordering::Relaxed);
        escalate_obs::counter_add("bench.cache_evictions", evicted);
    }
    evicted
}

/// Resident entries in the process-wide artifact cache.
pub fn artifact_cache_len() -> usize {
    artifact_cache().len()
}

/// Current capacity bound of the artifact cache (`0` = unbounded).
pub fn artifact_cache_capacity() -> usize {
    artifact_cache().capacity()
}

/// Running total of artifact-cache evictions, independent of whether a
/// metrics recorder is installed — the sweep's thrash warning reads this
/// to report how much recompression an undersized cache actually caused.
static ARTIFACT_EVICTIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total artifact-cache evictions since process start.
pub fn artifact_cache_evictions() -> u64 {
    ARTIFACT_EVICTIONS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Compresses a model at most once per process for each distinct
/// `(model, config)` pair; later calls return the shared artifacts.
///
/// Compression is the dominant fixed cost of an experiment grid (the
/// simulators re-run per seed and per accelerator; compression does not
/// need to), so harnesses that revisit the same model — seed sweeps, the
/// four-accelerator comparison, benchmark grids — go through this cache.
/// Concurrent first requests for the same key are single-flighted: one
/// caller compresses while the others wait on that key's slot, so the
/// expensive step never runs twice. The cache is capacity-bounded
/// ([`CACHE_CAP_ENV`], default [`DEFAULT_CACHE_CAP`]) with LRU eviction —
/// a long-running daemon churning through configs stays at a fixed
/// footprint. Hits, misses, and evictions are counted on the metrics
/// recorder (`bench.cache_hits` / `bench.cache_misses` /
/// `bench.cache_evictions`) when one is installed.
///
/// # Errors
///
/// Propagates compression failures (errors are not cached; a later call
/// retries).
pub fn compress_cached(
    profile: &ModelProfile,
    cfg: &CompressionConfig,
) -> Result<Arc<Vec<CompressedLayer>>, EscalateError> {
    let key = cache_key(profile, cfg);
    let look = artifact_cache()
        .get_or_compute(key, || compress_model_artifacts(profile, cfg).map(Arc::new))?;
    escalate_obs::counter_add(
        if look.hit {
            "bench.cache_hits"
        } else {
            "bench.cache_misses"
        },
        1,
    );
    if look.evicted > 0 {
        ARTIFACT_EVICTIONS.fetch_add(look.evicted, std::sync::atomic::Ordering::Relaxed);
        escalate_obs::counter_add("bench.cache_evictions", look.evicted);
    }
    Ok(look.value)
}

/// Averages per-seed results: seeds are simulated in parallel
/// (order-preserving), then every f64 sum — totals *and* the energy
/// breakdown, component by component — folds in ascending seed order, so
/// the mean is bit-identical for any thread count. Only
/// `first_seed_stats` is not a mean: it keeps the first seed's per-layer
/// trace (see [`AccelRun`]).
fn average_runs(name: String, per_seed: Vec<(ModelStats, EnergyBreakdown)>) -> AccelRun {
    let n = per_seed.len() as f64;
    let mut cycles = 0.0;
    let mut dram = 0.0;
    let mut energy = 0.0;
    let mut bd = EnergyBreakdown::default();
    for (stats, e) in &per_seed {
        // `schedule_cycles` is the serial layer sum unless a pipelined
        // schedule ran, so serial results are bit-identical to before.
        cycles += stats.schedule_cycles() as f64;
        dram += stats.total_dram().total() as f64;
        energy += e.total_pj();
        bd.dram_pj += e.dram_pj;
        bd.mac_pj += e.mac_pj;
        bd.concentration_pj += e.concentration_pj;
        bd.dilution_pj += e.dilution_pj;
        bd.input_buf_pj += e.input_buf_pj;
        bd.coef_psum_pj += e.coef_psum_pj;
        bd.act_buf_pj += e.act_buf_pj;
        bd.output_buf_pj += e.output_buf_pj;
    }
    bd.dram_pj /= n;
    bd.mac_pj /= n;
    bd.concentration_pj /= n;
    bd.dilution_pj /= n;
    bd.input_buf_pj /= n;
    bd.coef_psum_pj /= n;
    bd.act_buf_pj /= n;
    bd.output_buf_pj /= n;
    let (first_seed_stats, _) = per_seed.into_iter().next().expect("at least one seed ran");
    AccelRun {
        name,
        cycles: cycles / n,
        dram_bytes: dram / n,
        energy_pj: energy / n,
        first_seed_stats,
        energy: bd,
    }
}

/// The generic seed-averaging runner: simulates any [`Accelerator`] over
/// `seeds` input seeds and attaches energy under the given buffer
/// capacities.
///
/// Seeds fan out over the global thread pool unless `threads == 1`, which
/// forces a sequential loop; each seed is an independent simulation and
/// the average folds in seed order, so results are bit-identical either
/// way. ESCALATE and the baselines both run through this one function —
/// the only per-design differences are the `Accelerator` instance and the
/// buffer pricing.
pub fn run_accelerator(
    acc: &dyn Accelerator,
    caps: &BufferCaps,
    seeds: u64,
    threads: usize,
) -> AccelRun {
    let _t = escalate_obs::span_labeled("bench.accelerator", acc.name());
    if seeds == 0 {
        // Same policy as `positive_env`: clamp, but never silently.
        eprintln!(
            "warning: {}: seeds=0 requested; running 1 seed (a mean needs at least one sample)",
            acc.name()
        );
    }
    let units = UnitEnergy::table3();
    let simulate = |seed: u64| {
        let stats = acc.simulate(seed, threads);
        let e = model_energy(&stats, caps, &units);
        (stats, e)
    };
    let per_seed: Vec<(ModelStats, EnergyBreakdown)> = if threads == 1 {
        (0..seeds.max(1)).map(simulate).collect()
    } else {
        (0..seeds.max(1)).into_par_iter().map(simulate).collect()
    };
    average_runs(acc.name().into(), per_seed)
}

/// Runs ESCALATE on a compressed model, averaged over input seeds — a
/// thin wrapper binding [`Escalate`] to the workload and routing through
/// [`run_accelerator`] with the Table 2 buffer capacities.
pub fn run_escalate(
    profile: &ModelProfile,
    artifacts: &[CompressedLayer],
    sim_cfg: &SimConfig,
    seeds: u64,
) -> AccelRun {
    let workload = Workload::from_artifacts(&profile.name, artifacts, profile);
    run_escalate_workload(&workload, sim_cfg, seeds)
}

/// [`run_escalate`] against an already-built [`Workload`] — the sweep's
/// shared-work path hands in a cached workload ([`workload_cached`])
/// instead of rebuilding it per design point. The workload is read-only
/// to the simulation, so sharing cannot change results.
pub fn run_escalate_workload(workload: &Workload, sim_cfg: &SimConfig, seeds: u64) -> AccelRun {
    escalate_core::par::configure_threads(sim_cfg.threads);
    let caps = BufferCaps::from_config(sim_cfg);
    run_accelerator(
        &Escalate::new(workload, sim_cfg),
        &caps,
        seeds,
        sim_cfg.threads,
    )
}

type WorkloadCache = SingleFlightCache<CacheKey, Arc<Workload>>;

fn workload_cache() -> &'static WorkloadCache {
    static CACHE: OnceLock<WorkloadCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        let cap = escalate_core::par::positive_env(CACHE_CAP_ENV)
            .map_or(DEFAULT_CACHE_CAP, |v| v as usize);
        SingleFlightCache::new(cap)
    })
}

/// Builds the ESCALATE [`Workload`] for `(model, compression config)` at
/// most once per process, compressing through [`compress_cached`] first.
/// The workload — per-layer coefficient bitmasks, shapes, sparsities — is
/// a pure function of the artifacts, i.e. hardware-invariant: every
/// design point of a sweep sharing `(network, M)` simulates the very same
/// workload, so rebuilding it per point is pure overhead. Hits and misses
/// count as `sweep.derived_hits` / `sweep.derived_misses` alongside the
/// sim-side derived-state cache; the cache shares the artifact cache's
/// capacity policy ([`CACHE_CAP_ENV`]).
///
/// # Errors
///
/// Propagates compression failures.
pub fn workload_cached(
    profile: &ModelProfile,
    cfg: &CompressionConfig,
) -> Result<Arc<Workload>, EscalateError> {
    let artifacts = compress_cached(profile, cfg)?;
    let key = cache_key(profile, cfg);
    let look = workload_cache().get_or_compute(key, || {
        Ok::<_, EscalateError>(Arc::new(Workload::from_artifacts(
            &profile.name,
            &artifacts,
            profile,
        )))
    })?;
    escalate_obs::counter_add(
        if look.hit {
            "sweep.derived_hits"
        } else {
            "sweep.derived_misses"
        },
        1,
    );
    Ok(look.value)
}

/// Runs all four accelerators on one model.
///
/// The four simulations are independent, so they run concurrently (nested
/// joins on the global pool) unless `sim_cfg.threads == 1`; compression
/// goes through the per-process artifact cache.
///
/// # Errors
///
/// Propagates compression failures.
pub fn run_model(
    profile: &ModelProfile,
    sim_cfg: &SimConfig,
    seeds: u64,
) -> Result<ModelRun, EscalateError> {
    let _t = escalate_obs::span_labeled("bench.model", &profile.name);
    escalate_core::par::configure_threads(sim_cfg.threads);
    let artifacts = compress_cached(
        profile,
        &CompressionConfig {
            m: sim_cfg.m,
            ..CompressionConfig::default()
        },
    )?;
    let bw = BaselineWorkload::for_profile(profile);
    let caps = BufferCaps::baseline(64 * 1024);
    let (eyeriss, scnn, sparten) = (Eyeriss::default(), Scnn::default(), SparTen::default());
    let run_base = |model: &dyn LayerModel, threads: usize| {
        run_accelerator(&BaselineSim::new(model, &bw), &caps, seeds, threads)
    };
    let (escalate, (eyeriss, (scnn, sparten))) = if sim_cfg.threads == 1 {
        (
            run_escalate(profile, &artifacts, sim_cfg, seeds),
            (
                run_base(&eyeriss, 1),
                (run_base(&scnn, 1), run_base(&sparten, 1)),
            ),
        )
    } else {
        rayon::join(
            || run_escalate(profile, &artifacts, sim_cfg, seeds),
            || {
                rayon::join(
                    || run_base(&eyeriss, 0),
                    || rayon::join(|| run_base(&scnn, 0), || run_base(&sparten, 0)),
                )
            },
        )
    };
    Ok(ModelRun {
        model: profile.name.to_string(),
        escalate,
        eyeriss,
        scnn,
        sparten,
    })
}

/// The four designs [`run_model`] compares, in the comparison table's row
/// order (ESCALATE last).
pub const ACCELERATOR_NAMES: [&str; 4] = ["Eyeriss", "SCNN", "SparTen", "ESCALATE"];

/// Runs one of the four accelerators by name — the unit-sized slice of
/// [`run_model`] for callers (the serve daemon's simulate plan) that fan
/// the comparison out as independent work units. Each arm takes exactly
/// the code path `run_model` takes for that design (artifact cache,
/// baseline workload, buffer pricing), and every stage is
/// order-preserving with per-seed RNGs, so assembling the four results
/// into a [`ModelRun`] is bit-identical to one `run_model` call at any
/// thread count.
///
/// # Errors
///
/// Propagates compression failures; an unknown name reports the valid
/// set.
pub fn run_accelerator_by_name(
    name: &str,
    profile: &ModelProfile,
    sim_cfg: &SimConfig,
    seeds: u64,
) -> Result<AccelRun, EscalateError> {
    escalate_core::par::configure_threads(sim_cfg.threads);
    if name == "ESCALATE" {
        let artifacts = compress_cached(
            profile,
            &CompressionConfig {
                m: sim_cfg.m,
                ..CompressionConfig::default()
            },
        )?;
        return Ok(run_escalate(profile, &artifacts, sim_cfg, seeds));
    }
    let (eyeriss, scnn, sparten) = (Eyeriss::default(), Scnn::default(), SparTen::default());
    let model: &dyn LayerModel = match name {
        "Eyeriss" => &eyeriss,
        "SCNN" => &scnn,
        "SparTen" => &sparten,
        other => {
            return Err(EscalateError::Simulation {
                what: format!("unknown accelerator {other:?} (expected {ACCELERATOR_NAMES:?})"),
            })
        }
    };
    let bw = BaselineWorkload::for_profile(profile);
    let caps = BufferCaps::baseline(64 * 1024);
    Ok(run_accelerator(
        &BaselineSim::new(model, &bw),
        &caps,
        seeds,
        sim_cfg.threads,
    ))
}

/// Per-layer energy of one accelerator run (ESCALATE buffer pricing).
pub fn escalate_layer_energies(
    run: &AccelRun,
    sim_cfg: &SimConfig,
) -> Vec<(String, EnergyBreakdown)> {
    let caps = BufferCaps::from_config(sim_cfg);
    let units = UnitEnergy::table3();
    run.first_seed_stats
        .layers
        .iter()
        .map(|l| (l.name.clone(), layer_energy(l, &caps, &units)))
        .collect()
}

/// Geometric mean of `vals`, folded in slice order (so callers that build
/// the slice in model order reproduce the historical per-binary closures
/// bit for bit). The empty product is 1.0; a single element is returned
/// unchanged (up to `exp(ln(x))` rounding).
pub fn geomean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 1.0;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// Renders a simple ASCII bar of `value` scaled so `max` fills `width`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(n)
}

/// Formats a ratio like `12.3x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_seeds_ignores_invalid_env_with_warning() {
        // One test covering set/invalid/zero/unset so the env mutations
        // cannot race each other under the parallel test runner (this is
        // the only test in the binary touching ESCALATE_SEEDS).
        std::env::set_var(SEEDS_ENV, "7");
        assert_eq!(input_seeds(), 7);
        std::env::set_var(SEEDS_ENV, "lots");
        assert_eq!(input_seeds(), DEFAULT_INPUT_SEEDS);
        std::env::set_var(SEEDS_ENV, "0");
        assert_eq!(input_seeds(), DEFAULT_INPUT_SEEDS);
        std::env::remove_var(SEEDS_ENV);
        assert_eq!(input_seeds(), DEFAULT_INPUT_SEEDS);
    }

    #[test]
    fn average_runs_averages_scalars_and_keeps_first_seed_trace() {
        use escalate_sim::LayerStats;
        let seed_stats = |cycles: u64| ModelStats {
            model_name: "m".into(),
            layers: vec![LayerStats {
                name: "l0".into(),
                cycles,
                ..LayerStats::default()
            }],
            pipeline: None,
        };
        let energy = |mac_pj: f64| EnergyBreakdown {
            mac_pj,
            ..EnergyBreakdown::default()
        };
        let run = average_runs(
            "acc".into(),
            vec![
                (seed_stats(100), energy(10.0)),
                (seed_stats(300), energy(30.0)),
            ],
        );
        // Scalars are true means over the seeds...
        assert_eq!(run.cycles, 200.0);
        assert_eq!(run.energy_pj, 20.0);
        assert_eq!(run.energy.mac_pj, 20.0);
        // ...while the per-layer trace is the first seed's, verbatim — the
        // field name documents exactly that.
        assert_eq!(run.first_seed_stats.layers[0].cycles, 100);
    }

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10).len(), 10);
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn accelerator_by_name_matches_run_model_bitwise() {
        // The serve daemon fans the four designs out as independent work
        // units through `run_accelerator_by_name`; its bit-identity claim
        // against the one-shot `run_model` path is pinned here.
        let profile = ModelProfile::for_model("MobileNet").unwrap();
        let cfg = SimConfig::default();
        let whole = run_model(&profile, &cfg, 2).unwrap();
        let parts = [&whole.eyeriss, &whole.scnn, &whole.sparten, &whole.escalate];
        for (name, expect) in ACCELERATOR_NAMES.iter().zip(parts) {
            let run = run_accelerator_by_name(name, &profile, &cfg, 2).unwrap();
            assert_eq!(run.name, expect.name);
            assert_eq!(run.cycles.to_bits(), expect.cycles.to_bits(), "{name}");
            assert_eq!(run.dram_bytes.to_bits(), expect.dram_bytes.to_bits());
            assert_eq!(run.energy_pj.to_bits(), expect.energy_pj.to_bits());
        }
        assert!(run_accelerator_by_name("TPU", &profile, &cfg, 1).is_err());
    }

    #[test]
    fn mobilenet_end_to_end_smoke() {
        // The smallest model: full four-accelerator comparison with one seed.
        let profile = ModelProfile::for_model("MobileNet").unwrap();
        let run = run_model(&profile, &SimConfig::default(), 1).unwrap();
        assert!(run.escalate.cycles > 0.0);
        // ESCALATE must beat the dense baseline on a sparse model.
        assert!(
            run.speedup_over_eyeriss(&run.escalate) > 1.0,
            "speedup {}",
            run.speedup_over_eyeriss(&run.escalate)
        );
        assert!(run.escalate.energy_pj > 0.0);
    }
}
