#![warn(missing_docs)]

//! Shared experiment harness for regenerating the paper's tables and
//! figures.
//!
//! Each table/figure has a dedicated binary in `src/bin/` (`table1`,
//! `fig7`–`fig13`, `table4`, plus the ablation studies); this library
//! holds the common plumbing: compressing a model, building the
//! accelerator workloads, running all four simulators over multiple input
//! seeds, and attaching energy breakdowns.

use escalate_baselines::{Accelerator, BaselineWorkload, Eyeriss, Scnn, SparTen};
use escalate_core::pipeline::CompressionConfig;
use escalate_core::{compress_model_artifacts, CompressedLayer, EscalateError};
use escalate_energy::{layer_energy, model_energy, BufferCaps, EnergyBreakdown, UnitEnergy};
use escalate_models::ModelProfile;
use escalate_sim::{simulate_model, ModelStats, SimConfig, Workload};

/// Number of random input samples averaged per experiment (the paper uses
/// 10; see §5.2.1).
pub const INPUT_SEEDS: u64 = 10;

/// One accelerator's averaged result on one model.
#[derive(Debug, Clone)]
pub struct AccelRun {
    /// Accelerator name.
    pub name: String,
    /// Mean cycles over the input seeds.
    pub cycles: f64,
    /// Mean total DRAM bytes.
    pub dram_bytes: f64,
    /// Mean total energy (pJ).
    pub energy_pj: f64,
    /// Full stats of the first seed (for layer-wise figures).
    pub stats: ModelStats,
    /// Energy breakdown of the first seed.
    pub energy: EnergyBreakdown,
}

/// All four accelerators' results on one model.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// Model name.
    pub model: String,
    /// ESCALATE.
    pub escalate: AccelRun,
    /// Eyeriss (the normalization baseline).
    pub eyeriss: AccelRun,
    /// SCNN.
    pub scnn: AccelRun,
    /// SparTen.
    pub sparten: AccelRun,
}

impl ModelRun {
    /// Speedup of an accelerator over Eyeriss.
    pub fn speedup_over_eyeriss(&self, run: &AccelRun) -> f64 {
        self.eyeriss.cycles / run.cycles.max(1.0)
    }

    /// Energy efficiency (inverse energy) normalized to Eyeriss.
    pub fn efficiency_over_eyeriss(&self, run: &AccelRun) -> f64 {
        self.eyeriss.energy_pj / run.energy_pj.max(1.0)
    }

    /// DRAM accesses normalized to ESCALATE (Figure 9's axis).
    pub fn dram_vs_escalate(&self, run: &AccelRun) -> f64 {
        run.dram_bytes / self.escalate.dram_bytes.max(1.0)
    }
}

/// Compresses a model once (the expensive step shared by all harnesses).
///
/// # Errors
///
/// Propagates compression failures.
pub fn compress(profile: &ModelProfile, cfg: &CompressionConfig) -> Result<Vec<CompressedLayer>, EscalateError> {
    compress_model_artifacts(profile, cfg)
}

/// Runs ESCALATE on a compressed model, averaged over input seeds.
pub fn run_escalate(
    profile: &ModelProfile,
    artifacts: &[CompressedLayer],
    sim_cfg: &SimConfig,
    seeds: u64,
) -> AccelRun {
    let workload = Workload::from_artifacts(profile.name, artifacts, profile);
    let caps = BufferCaps::from_config(sim_cfg);
    let units = UnitEnergy::table3();
    let mut cycles = 0.0;
    let mut dram = 0.0;
    let mut energy = 0.0;
    let mut first: Option<(ModelStats, EnergyBreakdown)> = None;
    for seed in 0..seeds.max(1) {
        let stats = simulate_model(&workload, sim_cfg, seed);
        let e = model_energy(&stats, &caps, &units);
        cycles += stats.total_cycles() as f64;
        dram += stats.total_dram().total() as f64;
        energy += e.total_pj();
        if first.is_none() {
            first = Some((stats, e));
        }
    }
    let n = seeds.max(1) as f64;
    let (stats, energy_bd) = first.expect("at least one seed ran");
    AccelRun {
        name: "ESCALATE".into(),
        cycles: cycles / n,
        dram_bytes: dram / n,
        energy_pj: energy / n,
        stats,
        energy: energy_bd,
    }
}

/// Runs one baseline accelerator, averaged over input seeds.
pub fn run_baseline(acc: &dyn Accelerator, workload: &[BaselineWorkload], glb_bytes: usize, seeds: u64) -> AccelRun {
    let caps = BufferCaps::baseline(glb_bytes);
    let units = UnitEnergy::table3();
    let mut cycles = 0.0;
    let mut dram = 0.0;
    let mut energy = 0.0;
    let mut first: Option<(ModelStats, EnergyBreakdown)> = None;
    for seed in 0..seeds.max(1) {
        let stats = acc.simulate(workload, seed);
        let e = model_energy(&stats, &caps, &units);
        cycles += stats.total_cycles() as f64;
        dram += stats.total_dram().total() as f64;
        energy += e.total_pj();
        if first.is_none() {
            first = Some((stats, e));
        }
    }
    let n = seeds.max(1) as f64;
    let (stats, energy_bd) = first.expect("at least one seed ran");
    AccelRun {
        name: acc.name().into(),
        cycles: cycles / n,
        dram_bytes: dram / n,
        energy_pj: energy / n,
        stats,
        energy: energy_bd,
    }
}

/// Runs all four accelerators on one model.
///
/// # Errors
///
/// Propagates compression failures.
pub fn run_model(profile: &ModelProfile, sim_cfg: &SimConfig, seeds: u64) -> Result<ModelRun, EscalateError> {
    let artifacts = compress(profile, &CompressionConfig { m: sim_cfg.m, ..CompressionConfig::default() })?;
    let escalate = run_escalate(profile, &artifacts, sim_cfg, seeds);
    let bw = BaselineWorkload::for_profile(profile);
    let glb = 64 * 1024;
    Ok(ModelRun {
        model: profile.name.to_string(),
        escalate,
        eyeriss: run_baseline(&Eyeriss::default(), &bw, glb, seeds),
        scnn: run_baseline(&Scnn::default(), &bw, glb, seeds),
        sparten: run_baseline(&SparTen::default(), &bw, glb, seeds),
    })
}

/// Per-layer energy of one accelerator run (ESCALATE buffer pricing).
pub fn escalate_layer_energies(run: &AccelRun, sim_cfg: &SimConfig) -> Vec<(String, EnergyBreakdown)> {
    let caps = BufferCaps::from_config(sim_cfg);
    let units = UnitEnergy::table3();
    run.stats
        .layers
        .iter()
        .map(|l| (l.name.clone(), layer_energy(l, &caps, &units)))
        .collect()
}

/// Renders a simple ASCII bar of `value` scaled so `max` fills `width`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round().clamp(0.0, width as f64) as usize;
    "#".repeat(n)
}

/// Formats a ratio like `12.3x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10).len(), 10);
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn mobilenet_end_to_end_smoke() {
        // The smallest model: full four-accelerator comparison with one seed.
        let profile = ModelProfile::for_model("MobileNet").unwrap();
        let run = run_model(&profile, &SimConfig::default(), 1).unwrap();
        assert!(run.escalate.cycles > 0.0);
        // ESCALATE must beat the dense baseline on a sparse model.
        assert!(
            run.speedup_over_eyeriss(&run.escalate) > 1.0,
            "speedup {}",
            run.speedup_over_eyeriss(&run.escalate)
        );
        assert!(run.escalate.energy_pj > 0.0);
    }
}
