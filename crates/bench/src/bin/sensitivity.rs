//! Sensitivity study (§5.2.1's caveat): "Since the result is also related
//! to the activation sparsity, the result may vary with different input
//! samples." Quantifies (a) the run-to-run variance over random input
//! seeds at fixed sparsity, and (b) the sweep over activation-sparsity
//! levels.
//!
//! Usage: `cargo run --release -p escalate-bench --bin sensitivity`

use escalate_bench::compress;
use escalate_core::pipeline::CompressionConfig;
use escalate_models::ModelProfile;
use escalate_sim::{simulate_model, SimConfig, Workload};

fn main() {
    let cfg = SimConfig::default();
    let profile = ModelProfile::for_model("ResNet18").expect("known model");
    let artifacts =
        compress(&profile, &CompressionConfig::default()).expect("compression succeeds");
    let workload = Workload::from_artifacts("ResNet18", &artifacts, &profile);

    // (a) Input-sample variance at the profile's sparsity.
    let cycles: Vec<f64> = (0..10u64)
        .map(|seed| simulate_model(&workload, &cfg, seed).total_cycles() as f64)
        .collect();
    let mean = cycles.iter().sum::<f64>() / cycles.len() as f64;
    let var = cycles.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / cycles.len() as f64;
    let cv = var.sqrt() / mean;
    println!("ResNet18, 10 random input samples at profile sparsity:");
    println!(
        "  mean {mean:.0} cycles, coefficient of variation {:.2}%",
        cv * 100.0
    );
    println!();

    // (b) Activation-sparsity sweep (all layers forced to one level).
    println!(
        "{:>14} {:>12} {:>14}",
        "act sparsity", "cycles", "vs profile"
    );
    for sa in [0.0f64, 0.2, 0.4, 0.6, 0.8] {
        let mut w = workload.clone();
        for l in w.layers.iter_mut() {
            l.act_sparsity = sa;
            l.out_sparsity = sa;
        }
        let c = simulate_model(&w, &cfg, 0).total_cycles() as f64;
        println!("{:>13.0}% {:>12.0} {:>13.2}x", sa * 100.0, c, mean / c);
    }
    println!();
    println!("Denser activations lengthen the CA streams (and the DRAM traffic), so");
    println!("cycles fall monotonically with activation sparsity; the per-sample");
    println!("variance at a fixed level stays within a few percent, which is why the");
    println!("paper's 10-sample averages are stable.");
}
