//! Regenerates **Figure 11**: layer-wise sparsity and speedup over Eyeriss
//! for ResNet18 (the paper's subject), for all four accelerators. Pass a
//! model name as the first argument to analyze a different network.
//!
//! Usage: `cargo run --release -p escalate-bench --bin fig11 [MODEL]`

use escalate_baselines::{BaselineWorkload, Eyeriss, LayerModel, Scnn, SparTen};
use escalate_bench::compress;
use escalate_core::pipeline::CompressionConfig;
use escalate_models::ModelProfile;
use escalate_sim::{simulate_model, SimConfig, Workload};

fn main() {
    let cfg = SimConfig::default();
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ResNet18".to_string());
    let profile = ModelProfile::for_model(&name).unwrap_or_else(|| panic!("unknown model {name}"));
    let artifacts =
        compress(&profile, &CompressionConfig::default()).expect("compression succeeds");
    let workload = Workload::from_artifacts(profile.name, &artifacts, &profile);
    let esc = simulate_model(&workload, &cfg, 0);

    let bw = BaselineWorkload::for_profile(&profile);
    let eye = Eyeriss::default().simulate(&bw, 0);
    let scnn = Scnn::default().simulate(&bw, 0);
    let sparten = SparTen::default().simulate(&bw, 0);

    println!(
        "Figure 11: layer-wise speedup over Eyeriss, {} ({})",
        profile.name, profile.dataset
    );
    println!();
    println!(
        "{:<20} {:>5} {:>5} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "Layer", "C", "K", "spar%", "SCNN", "SparTen", "ESCALATE", "C/M limit"
    );
    // The per-layer comparison requires unfused layer lists (ESCALATE
    // fuses dw+pw pairs on the MobileNets).
    assert_eq!(
        esc.layers.len(),
        eye.layers.len(),
        "{} fuses DSC pairs; layer-wise comparison needs an unfused model",
        profile.name
    );
    let conv: Vec<_> = profile.model().conv_layers().cloned().collect();
    let n = conv.len();
    for (i, layer) in conv.iter().enumerate() {
        let e_cycles = eye.layers[i].cycles as f64;
        let esc_l = &esc.layers[i];
        let spar = profile.layer_coeff_sparsity(i, n) * 100.0;
        let cm = layer.c as f64 / cfg.m as f64;
        println!(
            "{:<20} {:>5} {:>5} {:>6.1}% {:>8.2}x {:>8.2}x {:>8.2}x {:>8.1}x{}",
            layer.name,
            layer.c,
            layer.k,
            spar,
            e_cycles / scnn.layers[i].cycles as f64,
            e_cycles / sparten.layers[i].cycles as f64,
            e_cycles / esc_l.cycles as f64,
            cm,
            if esc_l.fallback {
                "  (dense fallback)"
            } else {
                ""
            },
        );
    }
    println!();
    println!("Expected shape (paper): ESCALATE slower than Eyeriss on the first layer");
    println!("(dense fallback); within the first three blocks ESCALATE approaches the C/M");
    println!("limit; SCNN leads in early (large-map) layers, SparTen in late (deep) ones.");
}
