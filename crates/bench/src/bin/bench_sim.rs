//! Emits `BENCH_sim.json`: wall-clock of the full MobileNet
//! four-accelerator grid (ESCALATE + Eyeriss + SCNN + SparTen over the
//! configured input seeds), once forced sequential (`threads = 1`) and
//! once on the full thread pool, plus the resulting speedup. The two runs
//! are asserted bit-identical before anything is written, so the file also
//! certifies the determinism contract of the parallel harness.
//!
//! Usage: `bench_sim [output-path]` (default `BENCH_sim.json`).

use escalate_bench::{input_seeds, run_model, ModelRun};
use escalate_models::ModelProfile;
use escalate_sim::SimConfig;
use std::time::Instant;

/// Panics unless the two grids produced bit-identical results.
fn assert_identical(seq: &ModelRun, par: &ModelRun) {
    for (s, p) in [
        (&seq.escalate, &par.escalate),
        (&seq.eyeriss, &par.eyeriss),
        (&seq.scnn, &par.scnn),
        (&seq.sparten, &par.sparten),
    ] {
        assert_eq!(s.stats, p.stats, "{}: per-layer stats diverged", s.name);
        assert!(
            s.cycles == p.cycles && s.dram_bytes == p.dram_bytes && s.energy_pj == p.energy_pj,
            "{}: seed averages diverged between sequential and parallel runs",
            s.name
        );
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".into());
    // Build the global pool at full width up front: the first configuration
    // wins for the whole process, and the sequential grid (which only uses
    // `threads == 1` fast paths) must not pin the pool to one thread.
    let threads = escalate_core::par::configure_threads(0);
    let seeds = input_seeds();
    let profile = ModelProfile::for_model("MobileNet").expect("known model");

    let sequential_cfg = SimConfig {
        threads: 1,
        ..SimConfig::default()
    };
    let parallel_cfg = SimConfig::default();

    // Warm the artifact cache so both timings measure simulation, not the
    // shared one-off compression.
    let warm = Instant::now();
    run_model(&profile, &sequential_cfg, 1).expect("warm-up run");
    let warmup_s = warm.elapsed().as_secs_f64();

    let t = Instant::now();
    let seq = run_model(&profile, &sequential_cfg, seeds).expect("sequential grid");
    let sequential_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let par = run_model(&profile, &parallel_cfg, seeds).expect("parallel grid");
    let parallel_s = t.elapsed().as_secs_f64();

    assert_identical(&seq, &par);
    let speedup = sequential_s / parallel_s;

    let json = format!(
        "{{\n  \"benchmark\": \"mobilenet_four_accelerator_grid\",\n  \"model\": \"MobileNet\",\n  \"accelerators\": [\"ESCALATE\", \"Eyeriss\", \"SCNN\", \"SparTen\"],\n  \"seeds\": {seeds},\n  \"threads\": {threads},\n  \"compression_warmup_s\": {warmup_s:.4},\n  \"sequential_s\": {sequential_s:.4},\n  \"parallel_s\": {parallel_s:.4},\n  \"speedup\": {speedup:.2},\n  \"bit_identical\": true\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write benchmark record");
    println!("{json}");
    println!("wrote {out_path} ({threads} threads, {speedup:.2}x over sequential)");
}
