//! Regenerates the §6.3 discussion data point: on a sparse-aware
//! accelerator, a large redundant model (sparse VGG16) can outrun a
//! modern compact model (sparse MobileNetV2) at similar accuracy — the
//! paper measures sparse VGG16 as 1.5× faster than sparse MobileNetV2.
//!
//! Usage: `cargo run --release -p escalate-bench --bin discussion`

use escalate_bench::{compress, run_escalate};
use escalate_core::pipeline::{accuracy_proxy, CompressionConfig};
use escalate_core::ModelCompression;
use escalate_models::ModelProfile;
use escalate_sim::SimConfig;

fn main() {
    let cfg = SimConfig::default();
    println!("Section 6.3: redundant-but-sparse vs compact models on ESCALATE");
    println!();
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12} {:>11}",
        "Model", "dense MB", "comp. MB", "latency(ms)", "energy(mJ)", "proxy top-1"
    );
    let mut latencies = Vec::new();
    for name in ["VGG16", "MobileNetV2"] {
        let profile = ModelProfile::for_model(name).expect("known model");
        let artifacts =
            compress(&profile, &CompressionConfig::default()).expect("compression succeeds");
        let stats = ModelCompression {
            model_name: name.to_string(),
            layers: artifacts.iter().map(|a| a.stats.clone()).collect(),
        };
        let run = run_escalate(&profile, &artifacts, &cfg, 5);
        let latency = run.cycles / (cfg.frequency_mhz * 1e3);
        println!(
            "{:<12} {:>10.2} {:>12.3} {:>12.4} {:>12.3} {:>11.2}",
            name,
            profile.model().conv_size_mb_fp32(),
            stats.compressed_size_mb(),
            latency,
            run.energy_pj * 1e-9,
            accuracy_proxy(profile.baseline_top1, stats.mean_weight_error()),
        );
        latencies.push(latency);
    }
    println!();
    println!(
        "sparse VGG16 is {:.2}x {} than sparse MobileNetV2 (paper: 1.5x faster at a",
        (latencies[1] / latencies[0]).max(latencies[0] / latencies[1]),
        if latencies[0] < latencies[1] {
            "faster"
        } else {
            "slower"
        },
    );
    println!("0.5%-accuracy gap). Compact models are designed for dense edge processors");
    println!("and leave little sparsity for a sparse-aware accelerator to harvest (§6.3).");
}
