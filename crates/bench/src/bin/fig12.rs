//! Regenerates **Figure 12**: the accuracy / latency / energy trade-off as
//! the number of basis kernels `M` varies, with `l` shrunk to keep the
//! multiplier budget constant (ResNet18 and ResNet50).
//!
//! Usage: `cargo run --release -p escalate-bench --bin fig12`

use escalate_bench::{compress, run_escalate};
use escalate_core::pipeline::{accuracy_proxy, CompressionConfig};
use escalate_core::ModelCompression;
use escalate_models::ModelProfile;
use escalate_sim::SimConfig;

fn main() {
    println!("Figure 12: accuracy and latency/energy trade-off vs M (l keeps MAC budget)");
    for model in ["ResNet18", "ResNet50"] {
        let profile = ModelProfile::for_model(model).expect("known model");
        println!();
        println!("{model}:");
        println!(
            "{:<4} {:<4} {:>12} {:>12} {:>12} {:>11}",
            "M", "l", "proxy top-1", "latency(ms)", "energy(mJ)", "comp(x)"
        );
        for m in 4..=8usize {
            let sim_cfg = SimConfig::default().with_m(m);
            let cfg = CompressionConfig {
                m,
                ..CompressionConfig::default()
            };
            let artifacts = compress(&profile, &cfg).expect("compression succeeds");
            let stats = ModelCompression {
                model_name: model.to_string(),
                layers: artifacts.iter().map(|a| a.stats.clone()).collect(),
            };
            let run = run_escalate(&profile, &artifacts, &sim_cfg, 3);
            println!(
                "{:<4} {:<4} {:>12.2} {:>12.3} {:>12.3} {:>11.1}",
                m,
                sim_cfg.l,
                accuracy_proxy(profile.baseline_top1, stats.mean_weight_error()),
                run.cycles / (sim_cfg.frequency_mhz * 1e3),
                run.energy_pj * 1e-9,
                stats.compression_ratio(),
            );
        }
    }
    println!();
    println!("Expected shape (paper): accuracy rises with M; a larger M shrinks l (row");
    println!("parallelism), increasing latency; energy changes little, dominated by the");
    println!("off-chip-access change from the l-dependent input buffering.");
}
