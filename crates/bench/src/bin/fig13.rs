//! Regenerates **Figure 13**: MAC idle-cycle fraction and coefficient
//! sparsity per layer of MobileNet (ImageNet).
//!
//! Usage: `cargo run --release -p escalate-bench --bin fig13`

use escalate_bench::{bar, compress};
use escalate_core::pipeline::CompressionConfig;
use escalate_models::ModelProfile;
use escalate_sim::{simulate_model, SimConfig, Workload};

fn main() {
    let cfg = SimConfig::default();
    let profile = ModelProfile::for_model("MobileNet").expect("known model");
    let artifacts =
        compress(&profile, &CompressionConfig::default()).expect("compression succeeds");
    let workload = Workload::from_artifacts("MobileNet", &artifacts, &profile);
    let stats = simulate_model(&workload, &cfg, 0);

    println!("Figure 13: MAC idle cycles and coefficient sparsity per MobileNet layer");
    println!();
    println!("{:<16} {:>8} {:>8}  idle", "Layer", "spar%", "idle%");
    for (a, l) in artifacts.iter().zip(&stats.layers) {
        let spar = a.stats.coeff_sparsity() * 100.0;
        let idle = l.mac_idle_fraction() * 100.0;
        println!(
            "{:<16} {:>7.1}% {:>7.1}%  |{}",
            l.name,
            spar,
            idle,
            bar(idle, 100.0, 30)
        );
    }
    let total_idle: u64 = stats.layers.iter().map(|l| l.mac_idle_cycles).sum();
    let total_slots: u64 = stats.layers.iter().map(|l| l.mac_cycle_slots).sum();
    println!();
    println!(
        "overall idle fraction: {:.1}%",
        100.0 * total_idle as f64 / total_slots.max(1) as f64
    );
    println!();
    println!("Expected shape (paper): denser coefficient slices make the CA the");
    println!("bottleneck, so idle MACs track (1 - sparsity); ImageNet's moderate");
    println!("sparsity leaves substantial idle fractions, unlike the CIFAR models.");
}
