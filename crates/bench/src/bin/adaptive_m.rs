//! Extension study: per-layer adaptive basis counts (PENNI's energy-
//! threshold rank selection) versus the paper's fixed `M = 6`.
//!
//! The fixed-M design keeps the hardware mapping static (every slice has
//! exactly `M` CA-MAC pairs); adaptive selection shows how much model
//! size the fixed choice leaves on the table, which is the §6.1
//! trade-off viewed from the algorithm side.
//!
//! Usage: `cargo run --release -p escalate-bench --bin adaptive_m`

use escalate_core::decompose::{decompose, decompose_adaptive};
use escalate_core::pipeline::ternary_storage_bits;
use escalate_core::quant::{
    threshold_for_sparsity, HybridQuantized, QuantizedBasis, TernaryCoeffs,
};
use escalate_models::{synth, ModelProfile};

fn main() {
    let profile = ModelProfile::for_model("ResNet18").expect("known model");
    let model = profile.model();
    println!("Adaptive per-layer M (99% energy) vs fixed M = 6, ResNet18:");
    println!();
    println!(
        "{:<20} {:>4} {:>6} {:>10} {:>10} {:>9} {:>9}",
        "Layer", "Mad", "Mfix", "bits(ad)", "bits(fix)", "err(ad)", "err(fix)"
    );
    let conv: Vec<_> = model
        .conv_layers()
        .filter(|l| l.is_decomposable() && l.c > 3)
        .collect();
    let n = conv.len();
    let mut total_ad = 0usize;
    let mut total_fix = 0usize;
    for (i, layer) in conv.iter().enumerate() {
        let w = synth::weights(layer, 6, 0.05, synth::layer_seed(42, i, 0));
        let target = profile.layer_coeff_sparsity(i, n);

        let quantize = |d: &escalate_core::Decomposed| {
            let t = threshold_for_sparsity(&d.coeffs, target);
            let coeffs = TernaryCoeffs::ternarize(&d.coeffs, t).expect("valid threshold");
            let basis = QuantizedBasis::quantize(&d.basis);
            let h = HybridQuantized { basis, coeffs };
            let bits = h.basis.size_bits() + ternary_storage_bits(&h.coeffs);
            let err = w.relative_error(&h.to_decomposed().reconstruct());
            (bits, err)
        };

        let ad = decompose_adaptive(&w, 0.99).expect("decomposition succeeds");
        let fix = decompose(&w, 6.min(layer.r * layer.s)).expect("decomposition succeeds");
        let (bits_ad, err_ad) = quantize(&ad);
        let (bits_fix, err_fix) = quantize(&fix);
        total_ad += bits_ad;
        total_fix += bits_fix;
        println!(
            "{:<20} {:>4} {:>6} {:>10} {:>10} {:>9.3} {:>9.3}",
            layer.name,
            ad.m(),
            fix.m(),
            bits_ad,
            bits_fix,
            err_ad,
            err_fix
        );
    }
    println!();
    println!(
        "total: adaptive {:.3} MB vs fixed {:.3} MB ({:+.1}%)",
        total_ad as f64 / 8.0 / 1048576.0,
        total_fix as f64 / 8.0 / 1048576.0,
        100.0 * (total_ad as f64 - total_fix as f64) / total_fix as f64
    );
    println!();
    println!("Adaptive selection shrinks layers whose kernels are effectively low-rank;");
    println!("the hardware cost is a per-layer reconfiguration of the CA-MAC mapping,");
    println!("which the fixed-M design deliberately avoids (§6.1).");
}
