//! Regenerates **Figure 10**: the inference energy breakdown of ESCALATE
//! on all six models (DRAM, input buffer, MAC rows, dilution,
//! concentration, activation staging, coefficient+psum buffers). The
//! output buffer is omitted, as in the paper, because its share is
//! negligible.
//!
//! Usage: `cargo run --release -p escalate-bench --bin fig10`

use escalate_bench::{input_seeds, run_model};
use escalate_models::ModelProfile;
use escalate_sim::SimConfig;

fn main() {
    let cfg = SimConfig::default();
    println!("Figure 10: ESCALATE inference energy breakdown (% of total)");
    println!();
    println!(
        "{:<12} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>10}",
        "Model", "DRAM", "InBuf", "MAC", "Dilut", "Concen", "ActBuf", "Cf+Ps", "total(uJ)"
    );
    for profile in ModelProfile::all() {
        let run = run_model(&profile, &cfg, input_seeds()).expect("simulation succeeds");
        let e = &run.escalate.energy;
        let total = e.total_pj();
        let pct = |v: f64| 100.0 * v / total;
        println!(
            "{:<12} {:>8.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>10.1}",
            profile.name,
            pct(e.dram_pj),
            pct(e.input_buf_pj),
            pct(e.mac_pj),
            pct(e.dilution_pj),
            pct(e.concentration_pj),
            pct(e.act_buf_pj),
            pct(e.coef_psum_pj),
            total * 1e-6,
        );
    }
    println!();
    println!("Expected shape (paper): psum/coef buffers dominate buffer energy on shallow");
    println!("models (VGG16, ResNet18) via dense read-modify-write; input reads dominate");
    println!("on deep 1x1-heavy models (ResNet152, MobileNetV2); DRAM weight traffic is");
    println!("nearly eliminated on CIFAR models.");
}
