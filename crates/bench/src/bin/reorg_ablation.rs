//! Ablation: Eq. (2) vs Eq. (3) computation order (paper §3.1).
//!
//! Measures, per ResNet18 layer shape, the intermediate-feature-map
//! footprint and the wall-clock of the two orders of decomposed
//! convolution. The reorganization (Eq. 3) is the ESCALATE algorithm's
//! first contribution: it shrinks the intermediate state from `C·M`
//! output-sized maps to `M` input-sized maps.
//!
//! Usage: `cargo run --release -p escalate-bench --bin reorg_ablation`

use escalate_core::decompose;
use escalate_core::reorg::{forward_eq2, forward_eq3, intermediate_footprint};
use escalate_models::{synth, ModelProfile};
use std::time::Instant;

fn main() {
    let profile = ModelProfile::for_model("ResNet18").expect("known model");
    println!("Eq.(2) vs Eq.(3): intermediate footprint (elements) and forward time");
    println!();
    println!(
        "{:<20} {:>5} {:>5} {:>12} {:>12} {:>9} {:>9} {:>8}",
        "Layer", "C", "K", "inter eq2", "inter eq3", "eq2(ms)", "eq3(ms)", "agree"
    );
    // Scale the spatial size down so the dense reference runs quickly; the
    // footprint ratio C·M/M is spatial-size independent.
    for (i, layer) in profile
        .model()
        .conv_layers()
        .filter(|l| l.is_decomposable())
        .take(9)
        .enumerate()
    {
        let mut l = layer.clone();
        l.x = l.x.min(16);
        l.y = l.y.min(16);
        let w = synth::weights(&l, 6, 0.05, synth::layer_seed(7, i, 0));
        let d = decompose(&w, 6.min(l.r * l.s)).expect("decomposition succeeds");
        let input = synth::activations(&l, 0.5, i as u64);

        let t2 = Instant::now();
        let (o2, i2) = forward_eq2(&d, &input, l.stride, l.pad);
        let t2 = t2.elapsed();
        let t3 = Instant::now();
        let (o3, i3) = forward_eq3(&d, &input, l.stride, l.pad);
        let t3 = t3.elapsed();
        let (f2, f3) = intermediate_footprint(&d, l.x, l.y, l.stride, l.pad);
        assert_eq!((i2, i3), (f2, f3), "footprint helper must match execution");

        println!(
            "{:<20} {:>5} {:>5} {:>12} {:>12} {:>9.2} {:>9.2} {:>8}",
            l.name,
            l.c,
            l.k,
            i2,
            i3,
            t2.as_secs_f64() * 1e3,
            t3.as_secs_f64() * 1e3,
            if o2.all_close(&o3, 1e-2) { "yes" } else { "NO" },
        );
    }
    println!();
    println!("Eq.(3) holds only M maps live (vs C·M), enabling stream processing; both");
    println!("orders produce identical outputs (distributivity of convolution).");
}
