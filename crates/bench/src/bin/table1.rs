//! Regenerates **Table 1**: compression results of the ESCALATE algorithm
//! on all six evaluated models, next to the paper's reported numbers.
//!
//! Usage: `cargo run --release -p escalate-bench --bin table1`
//!
//! Accuracy cannot be measured without a training stack; the "err" column
//! reports the parameter-weighted weight-space relative error of the
//! compressed model and "proxy top-1" applies the documented monotone
//! mapping (see EXPERIMENTS.md).

use escalate_core::compress_model;
use escalate_core::pipeline::{accuracy_proxy, CompressionConfig};
use escalate_models::ModelProfile;

fn main() {
    let cfg = CompressionConfig::default();
    println!(
        "Table 1: ESCALATE compression results (M = {}, t from per-layer sparsity targets)",
        cfg.m
    );
    println!();
    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8} {:>11} {:>11}",
        "Model",
        "CONV(MB)",
        "comp(MB)",
        "Comp.(x)",
        "Spar.(%)",
        "Prun.(%)",
        "err",
        "proxy",
        "paperComp",
        "paperSpar"
    );
    for profile in ModelProfile::all() {
        let model = profile.model();
        let result = compress_model(&profile, &cfg).expect("compression succeeds");
        let proxy = accuracy_proxy(profile.baseline_top1, result.mean_weight_error());
        println!(
            "{:<12} {:>9.2} {:>10.3} {:>10.2} {:>9.2} {:>9.2} {:>8.3} {:>8.2} {:>11.2} {:>11.2}",
            profile.name,
            model.conv_size_mb_fp32(),
            result.compressed_size_mb(),
            result.compression_ratio(),
            result.coeff_sparsity() * 100.0,
            result.pruning_ratio() * 100.0,
            result.mean_weight_error(),
            proxy,
            profile.paper_compression,
            profile.coeff_sparsity * 100.0,
        );
    }
    println!();
    println!("paperComp/paperSpar: the paper's Table 1 'Ours' rows for comparison.");
}
