//! Thin wrapper over the experiment registry entry `table1`.
//! See `report --list` (or `escalate report --list`) for the full set.

use std::process::ExitCode;

fn main() -> ExitCode {
    escalate_bench::experiments::run_bin("table1")
}
