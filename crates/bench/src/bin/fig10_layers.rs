//! Companion to Figure 10: the ESCALATE energy breakdown resolved per
//! layer for one model, showing *where* in the network each component's
//! share comes from (the paper discusses shallow-vs-deep divergence at
//! the model level; this view localizes it).
//!
//! Usage: `cargo run --release -p escalate-bench --bin fig10_layers [MODEL]`

use escalate_bench::{compress, escalate_layer_energies, run_escalate};
use escalate_core::pipeline::CompressionConfig;
use escalate_models::ModelProfile;
use escalate_sim::SimConfig;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ResNet18".to_string());
    let profile = ModelProfile::for_model(&name).unwrap_or_else(|| panic!("unknown model {name}"));
    let cfg = SimConfig::default();
    let artifacts =
        compress(&profile, &CompressionConfig::default()).expect("compression succeeds");
    let run = run_escalate(&profile, &artifacts, &cfg, 1);
    let layers = escalate_layer_energies(&run, &cfg);

    println!(
        "Per-layer ESCALATE energy breakdown, {} (% of the layer's energy)",
        profile.name
    );
    println!();
    println!(
        "{:<22} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "layer", "total(uJ)", "DRAM", "MAC", "Dilut", "Concen", "bufs"
    );
    for (layer_name, e) in &layers {
        let total = e.total_pj();
        let pct = |v: f64| 100.0 * v / total.max(1e-12);
        let bufs = e.input_buf_pj + e.coef_psum_pj + e.act_buf_pj + e.output_buf_pj;
        println!(
            "{:<22} {:>10.2} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            layer_name,
            total * 1e-6,
            pct(e.dram_pj),
            pct(e.mac_pj),
            pct(e.dilution_pj),
            pct(e.concentration_pj),
            pct(bufs),
        );
    }
    let model_total: f64 = layers.iter().map(|(_, e)| e.total_pj()).sum();
    println!();
    println!(
        "model total: {:.1} uJ over {} layers",
        model_total * 1e-6,
        layers.len()
    );
    println!();
    println!("Early wide-map layers are DRAM-lean and logic-dominated; layers whose");
    println!("compressed inputs exceed the distributed buffers (re-streamed IFMs) and");
    println!("the dense-fallback first layer carry the DRAM share — the layer-resolved");
    println!("view behind the model-level Figure 10 bars.");
}
