//! Regenerates **Figure 9**: DRAM accesses of the baseline accelerators
//! normalized to ESCALATE, on all six models.
//!
//! Usage: `cargo run --release -p escalate-bench --bin fig9`

use escalate_bench::{bar, input_seeds, run_model};
use escalate_models::ModelProfile;
use escalate_sim::SimConfig;

fn main() {
    let cfg = SimConfig::default();
    println!("Figure 9: DRAM accesses normalized to ESCALATE (higher = more traffic)");
    println!();
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>10}",
        "Model", "Eyeriss", "SCNN", "SparTen", "ESCALATE"
    );
    let mut ratios = Vec::new();
    for profile in ModelProfile::all() {
        let run = run_model(&profile, &cfg, input_seeds()).expect("simulation succeeds");
        let r = [
            run.dram_vs_escalate(&run.eyeriss),
            run.dram_vs_escalate(&run.scnn),
            run.dram_vs_escalate(&run.sparten),
        ];
        println!(
            "{:<12} {:>8.2}x {:>8.2}x {:>8.2}x {:>9.2}x   |{}",
            profile.name,
            r[0],
            r[1],
            r[2],
            1.0,
            bar(r[0], 40.0, 30)
        );
        ratios.push(r);
    }
    let geo = |i: usize| -> f64 {
        (ratios.iter().map(|r| r[i].ln()).sum::<f64>() / ratios.len() as f64).exp()
    };
    println!("{}", "-".repeat(60));
    println!(
        "{:<12} {:>8.2}x {:>8.2}x {:>8.2}x",
        "geomean",
        geo(0),
        geo(1),
        geo(2)
    );
    println!();
    println!("Paper reference (means): Eyeriss 18.1x, SCNN 5.3x, SparTen 9.4x the DRAM");
    println!("accesses of ESCALATE; CIFAR models show the big reductions, ImageNet");
    println!("models are similar or favor the baselines.");
}
