//! Ablation: the closed-form Eyeriss utilization vs an explicit
//! row-stationary mapping search (TimeLoop-lite).
//!
//! The Figure 8/9/11 baselines use a closed-form Eyeriss model (kernel-row
//! fit × scheduling efficiency). This study runs the full mapping search
//! on every ResNet18 layer and reports the per-layer gap, validating that
//! the closed form sits within the scheduling-efficiency envelope of the
//! best discoverable mapping — i.e. the normalization baseline is neither
//! sandbagged nor idealized.
//!
//! Usage: `cargo run --release -p escalate-bench --bin rs_mapping`

use escalate_baselines::rs_mapper::search;
use escalate_baselines::{BaselineWorkload, Eyeriss, LayerModel};
use escalate_models::ModelProfile;

fn main() {
    let profile = ModelProfile::for_model("ResNet18").expect("known model");
    let workload = BaselineWorkload::for_profile(&profile);
    let eye = Eyeriss::default();
    let closed = eye.simulate(&workload, 0);

    println!("Row-stationary mapping search vs the closed-form Eyeriss model (ResNet18)");
    println!();
    println!(
        "{:<20} {:>10} {:>10} {:>7} {:>14} {:>8}",
        "Layer", "searched", "closed", "ratio", "mapping", "util"
    );
    let mut total_searched = 0u64;
    let mut total_closed = 0u64;
    for (w, cl) in workload.iter().zip(&closed.layers) {
        let m = search(w, 32, 32);
        total_searched += m.cycles;
        total_closed += cl.cycles;
        println!(
            "{:<20} {:>10} {:>10} {:>6.2}x {:>6}r/{:<3}o/{:<3}f {:>7.1}%",
            w.layer.name,
            m.cycles,
            cl.cycles,
            cl.cycles as f64 / m.cycles as f64,
            m.row_replicas,
            m.cols_for_output,
            m.cols_for_filters,
            m.utilization * 100.0,
        );
    }
    println!();
    println!(
        "model total: searched {total_searched}, closed-form {total_closed} ({:.2}x)",
        total_closed as f64 / total_searched as f64
    );
    println!();
    println!("The searched mapping is the fragmentation-only ideal; the closed form adds");
    println!("the scheduling-efficiency residual real schedules pay. A model-level ratio");
    println!("near 1.0-1.5x confirms the normalization baseline of Figures 8/9/11 is fair.");
}
