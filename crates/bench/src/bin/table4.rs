//! Reprints **Table 4** (power and area of one PE block, TSMC 65 nm) from
//! the synthesis-derived component model, together with the Table 2
//! configuration the numbers correspond to and the whole-chip estimate.
//!
//! Usage: `cargo run --release -p escalate-bench --bin table4`

use escalate_energy::area::{PeBlockArea, COMPONENTS, TOTAL_AREA_MM2, TOTAL_POWER_MW};
use escalate_sim::SimConfig;

fn main() {
    let cfg = SimConfig::default();
    println!("Table 2: ESCALATE configuration");
    println!("  M = {}   N_PE = {}   l = {}", cfg.m, cfg.n_pe, cfg.l);
    println!(
        "  input bus {} B, precision {} bit, buffers: input {} KB, coef {} B, output {} KB, psum {} KB, act {} B",
        cfg.input_bus_bytes,
        cfg.precision_bits,
        cfg.input_buf_bytes / 1024,
        cfg.coef_buf_bytes,
        cfg.output_buf_bytes / 1024,
        cfg.psum_buf_bytes / 1024,
        cfg.act_buf_bytes,
    );
    println!(
        "  {} multipliers total, {} MHz",
        cfg.total_macs(),
        cfg.frequency_mhz
    );
    println!();
    println!("Table 4: power and area estimation of one PE block (65 nm)");
    println!();
    println!(
        "{:<20} {:>10} {:>10}",
        "Component", "Area(mm2)", "Power(mW)"
    );
    for c in COMPONENTS {
        println!("{:<20} {:>10.4} {:>10.2}", c.name, c.area_mm2, c.power_mw);
    }
    let total = PeBlockArea::from_components();
    println!(
        "{:<20} {:>10.4} {:>10.2}",
        "Total", total.area_mm2, total.power_mw
    );
    assert!((total.area_mm2 - TOTAL_AREA_MM2).abs() < 1e-3);
    assert!((total.power_mw - TOTAL_POWER_MW).abs() < 1e-2);
    println!();
    let chip = PeBlockArea::chip(cfg.n_pe);
    println!(
        "Whole accelerator ({} blocks): {:.2} mm2, {:.2} W",
        cfg.n_pe,
        chip.area_mm2,
        chip.power_mw / 1000.0
    );
}
