//! Regenerates **Figure 8**: normalized speedup and energy efficiency
//! (over Eyeriss) of ESCALATE, SCNN and SparTen on all six models.
//!
//! Usage: `cargo run --release -p escalate-bench --bin fig8`

use escalate_bench::{input_seeds, ratio, run_model};
use escalate_models::ModelProfile;
use escalate_sim::SimConfig;

fn main() {
    let cfg = SimConfig::default();
    let mut speedups = Vec::new();
    let mut effs = Vec::new();

    println!("Figure 8: normalized speedup / energy efficiency over Eyeriss");
    println!();
    println!(
        "{:<12} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "Model", "SCNN", "SparTen", "ESCALATE", "SCNN", "SparTen", "ESCALATE"
    );
    println!(
        "{:<12} | {:^29} | {:^29}",
        "", "speedup", "energy efficiency"
    );
    println!("{}", "-".repeat(78));
    for profile in ModelProfile::all() {
        let run = run_model(&profile, &cfg, input_seeds()).expect("simulation succeeds");
        let s = [
            run.speedup_over_eyeriss(&run.scnn),
            run.speedup_over_eyeriss(&run.sparten),
            run.speedup_over_eyeriss(&run.escalate),
        ];
        let e = [
            run.efficiency_over_eyeriss(&run.scnn),
            run.efficiency_over_eyeriss(&run.sparten),
            run.efficiency_over_eyeriss(&run.escalate),
        ];
        println!(
            "{:<12} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
            profile.name,
            ratio(s[0]),
            ratio(s[1]),
            ratio(s[2]),
            ratio(e[0]),
            ratio(e[1]),
            ratio(e[2]),
        );
        speedups.push(s);
        effs.push(e);
    }
    println!("{}", "-".repeat(78));
    let geo = |i: usize, v: &[[f64; 3]]| -> f64 {
        (v.iter().map(|r| r[i].ln()).sum::<f64>() / v.len() as f64).exp()
    };
    println!(
        "{:<12} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "geomean",
        ratio(geo(0, &speedups)),
        ratio(geo(1, &speedups)),
        ratio(geo(2, &speedups)),
        ratio(geo(0, &effs)),
        ratio(geo(1, &effs)),
        ratio(geo(2, &effs)),
    );
    println!();
    println!("Paper reference (means): ESCALATE speedup 17.9x over Eyeriss, 3.5x over SCNN,");
    println!("2.16x over SparTen; energy efficiency 8.3x over Eyeriss, 5.19x over SCNN,");
    println!("3.78x over SparTen.");
}
