//! Ablation: partial-sum bank conflicts under the Basis-First scatter
//! (paper §4.1).
//!
//! The paper deliberately adds no conflict-avoidance hardware at the psum
//! buffer ("the output accumulation is not at the critical path ... we do
//! not attempt to reduce bank conflicts"). This study replays the MAC
//! rows' scatter pattern — `M` MACs each walking the `R·S` offsets of one
//! output position per service window — against banked psum buffers of
//! different widths and reports the serialization factor, confirming the
//! decision: even 4 banks keep the factor well under the slack the MAC
//! service time provides.
//!
//! Usage: `cargo run --release -p escalate-bench --bin psum_ablation`

use escalate_sim::psum::{scatter_addresses, PsumBanks};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let m = 6usize; // MACs per slice
    let (r, s) = (3usize, 3usize);
    let out_width = 32usize; // output-row buffer width
    let positions = 2048usize;

    println!("Psum bank-conflict factor under the Basis-First scatter");
    println!("({m} MACs x {r}x{s} kernels, {out_width}-wide output rows, {positions} positions)");
    println!();
    println!(
        "{:>6} {:>12} {:>12} {:>16}",
        "banks", "accesses", "cycles", "conflict factor"
    );
    for banks in [2usize, 4, 8, 16, 32] {
        let mut p = PsumBanks::new(banks, (r + 1) * out_width / banks + 1);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..positions {
            // Each MAC owns one intermediate element at a random column of
            // the row; per service cycle, the M MACs each write one of
            // their R·S scatter targets.
            let offsets: Vec<Vec<usize>> = (0..m)
                .map(|_| {
                    let dy = rng.gen_range(0..out_width - s + 1);
                    scatter_addresses(0, dy, r, s, out_width)
                })
                .collect();
            // The MACs' service windows are phase-staggered (their CA
            // elements complete at different cycles), so MAC j walks its
            // scatter offsets shifted by j.
            for step in 0..r * s {
                let group: Vec<(usize, f32)> = offsets
                    .iter()
                    .enumerate()
                    .filter_map(|(j, o)| o.get((step + j) % o.len()).map(|&a| (a, 1.0)))
                    .collect();
                p.issue(&group);
            }
            let _ = p.drain();
        }
        let st = p.stats();
        println!(
            "{:>6} {:>12} {:>12} {:>15.2}x",
            banks,
            st.accesses,
            st.cycles(),
            st.conflict_factor()
        );
    }
    println!();
    println!("With a factor f, the psum stage needs f*R*S cycles per position against");
    println!("the slice's max(CA, R*S) pace. Stream-bound layers (CA of 14-29 cycles on");
    println!("the ImageNet models) absorb f up to ~2-3 for free, and the accumulation");
    println!("sits behind a write queue rather than in the MAC issue path — the paper's");
    println!("rationale for leaving the psum buffer unoptimized (4.1).");
}
