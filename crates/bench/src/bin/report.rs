//! The experiment-registry runner: list, run, export (`--json`),
//! regenerate (`--update`) or regression-check (`--check`) the golden
//! corpus under `results/`. See `crate::experiments::runner` for usage.

use std::process::ExitCode;

fn main() -> ExitCode {
    escalate_bench::experiments::report_main(std::env::args().skip(1))
}
