//! Thin wrapper over the experiment registry entry `encoding_sweep`.
//! See `report --list` (or `escalate report --list`) for the full set.

use std::process::ExitCode;

fn main() -> ExitCode {
    escalate_bench::experiments::run_bin("encoding_sweep")
}
