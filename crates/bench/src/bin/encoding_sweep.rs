//! Ablation: sparse-encoding storage cost across the sparsity range
//! (paper §4.2.1's argument for SparseMap over CSR-style indices, and for
//! the 2-level variant at extreme sparsity).
//!
//! Usage: `cargo run --release -p escalate-bench --bin encoding_sweep`

use escalate_sparse::csr::{Csr, RunLength};
use escalate_sparse::{SparseMap, TwoLevelSparseMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 64 * 1024;
    let mut rng = StdRng::seed_from_u64(7);
    println!("Storage (bits per position) of a {n}-element ternary vector");
    println!();
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>10}",
        "sparsity", "SparseMap", "2-level", "CSR", "RLE(4b)"
    );
    for sparsity in [0.5, 0.8, 0.9, 0.95, 0.97, 0.99, 0.995, 0.999] {
        let dense: Vec<f32> = (0..n)
            .map(|_| {
                if rng.gen_bool(sparsity) {
                    0.0
                } else if rng.gen_bool(0.5) {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        // Ternary nonzeros cost 1 bit (the sign); CSR/RLE store 2-bit
        // values since they lack the per-filter scale split.
        let sm = SparseMap::encode(&dense).size_bits(1) as f64 / n as f64;
        let two = TwoLevelSparseMap::encode(&dense).size_bits(1) as f64 / n as f64;
        let csr = Csr::encode(1, n, &dense).size_bits(2) as f64 / n as f64;
        let rle = RunLength::encode(&dense, 4).size_bits(2) as f64 / n as f64;
        println!(
            "{:>8.1}% {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            sparsity * 100.0,
            sm,
            two,
            csr,
            rle
        );
    }
    println!();
    println!("Expected shape: SparseMap beats index-based encodings at moderate sparsity");
    println!("(a ternary value is cheaper than its index); the 2-level variant wins past");
    println!("~97% sparsity by eliding all-zero 16-bit chunks.");
}
