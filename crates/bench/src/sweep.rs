//! The design-space sweep behind `escalate sweep`: the second consumer of
//! the [`crate::plan`] layer (the first is the experiment registry).
//!
//! The sweep samples accelerator design points — `M`, PE count, input bus
//! width, the four buffer capacities, and the host `sample_channels`
//! fidelity knob — from declared ranges, runs each point through the
//! ESCALATE simulator on each requested zoo network, and streams one
//! JSONL record per `(network, sample)` to an append-only file. Sampling
//! is deterministic: sample `i` derives its own seed via
//! [`plan::unit_seed`] from the master seed, so the same command line
//! enumerates the same design points at any thread count, and a resumed
//! run (the [`plan::JsonlSink`] skips already-recorded keys) appends
//! exactly the missing records — byte-identical to an uninterrupted run.
//!
//! The summary is always computed from the *parsed stream* (resumed and
//! fresh records alike), so a cold run and a resumed one render the same
//! Pareto frontier: per network, the sampled points not strictly
//! dominated on (cycles, energy, area).

use crate::experiments::ExpError;
use crate::plan::{self, JsonlSink, RunPlan, UnitOutput, WorkUnit};
use escalate_core::pipeline::CompressionConfig;
use escalate_models::ModelProfile;
use escalate_obs::{json_f64_field, json_string_field, json_u64_field, JsonWriter};
use escalate_sim::{DesignPoint, ScheduleKind};
use std::io::Write;
use std::path::PathBuf;

/// Schema identifier of one sweep stream record (sibling of
/// `escalate-report/v1`).
pub const SWEEP_SCHEMA: &str = "escalate-sweep/v1";

/// Candidate input bus widths (bytes).
const BUS_CHOICES: [usize; 4] = [8, 16, 32, 64];
/// Candidate per-buffer input-buffer capacities (bytes).
const INPUT_BUF_CHOICES: [usize; 3] = [4096, 8192, 16384];
/// Candidate coefficient-buffer capacities (bytes).
const COEF_BUF_CHOICES: [usize; 3] = [256, 512, 1024];
/// Candidate partial-sum-buffer capacities (bytes).
const PSUM_BUF_CHOICES: [usize; 3] = [1024, 2048, 4096];
/// Candidate output-buffer capacities (bytes).
const OUTPUT_BUF_CHOICES: [usize; 3] = [2048, 4096, 8192];
/// Candidate `sample_channels` fidelity settings.
const SAMPLE_CH_CHOICES: [usize; 3] = [4, 8, 16];

/// How the sweep draws design points from the declared ranges
/// (`--sampler`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sampler {
    /// Independent pseudo-random draws per sample (the original sampler;
    /// streams and frontiers are byte-identical to earlier releases).
    #[default]
    Uniform,
    /// Low-discrepancy Halton draws: sample `i` takes dimension `d` from
    /// the radical inverse of `i` in the `d`-th prime base, so small grids
    /// cover the design space far more evenly than independent draws
    /// (uniform sampling leaves clusters and holes at a few hundred
    /// points). The master seed offsets the sequence start.
    Halton,
}

impl Sampler {
    /// Parses a `--sampler` value.
    ///
    /// # Errors
    ///
    /// Returns a usage message for anything but `uniform` / `halton`.
    pub fn parse(s: &str) -> Result<Sampler, String> {
        match s {
            "uniform" => Ok(Sampler::Uniform),
            "halton" => Ok(Sampler::Halton),
            other => Err(format!("unknown sampler {other:?} (uniform, halton)")),
        }
    }
}

/// What to do with a frontier golden file (`--check` / `--update`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenMode {
    /// Compare the rendered frontier tables against the file; any drift
    /// is an error (the CI path).
    Check,
    /// Rewrite the file with the rendered frontier tables.
    Update,
}

/// What `escalate sweep` was asked to do.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Network specs to evaluate every sampled point on (sweep positional
    /// arguments; default: the full evaluated zoo). Each spec goes through
    /// [`escalate_models::resolve`], so `@FILE` descriptions and
    /// `gen:NAME` generators work alongside zoo names.
    pub networks: Vec<String>,
    /// Design points sampled per network (`--samples`).
    pub samples: usize,
    /// Master seed the per-sample seeds derive from (`--seed`).
    pub master_seed: u64,
    /// Input seeds averaged per simulation (`--seeds`).
    pub input_seeds: u64,
    /// Host threads (`--threads`; `0` = auto).
    pub threads: usize,
    /// JSONL stream path (`--out`); appended to on resume.
    pub out: PathBuf,
    /// Inclusive range of `M` (`--m A..B`).
    pub m_range: (usize, usize),
    /// Inclusive range of PE counts (`--pe A..B`); only powers of two in
    /// the range are sampled.
    pub pe_range: (usize, usize),
    /// Design-point sampler (`--sampler`).
    pub sampler: Sampler,
    /// Frontier golden file to check or update, if any.
    pub golden: Option<(PathBuf, GoldenMode)>,
    /// Layer schedule every sampled point simulates under (`--schedule`).
    pub schedule: ScheduleKind,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            networks: ModelProfile::all().iter().map(|p| p.name.clone()).collect(),
            samples: 8,
            master_seed: 42,
            input_seeds: 2,
            threads: 0,
            out: PathBuf::from("sweep.jsonl"),
            m_range: (4, 8),
            pe_range: (8, 64),
            sampler: Sampler::Uniform,
            golden: None,
            schedule: ScheduleKind::default(),
        }
    }
}

/// Parses an inclusive `A..B` range (e.g. `--m 4..8`).
///
/// # Errors
///
/// Returns a usage message when the syntax or ordering is invalid.
pub fn parse_range(s: &str) -> Result<(usize, usize), String> {
    let (lo, hi) = s
        .split_once("..")
        .ok_or_else(|| format!("expected an inclusive range like 4..8, got {s:?}"))?;
    let lo: usize = lo
        .trim()
        .parse()
        .map_err(|_| format!("bad range start {lo:?}"))?;
    let hi: usize = hi
        .trim()
        .parse()
        .map_err(|_| format!("bad range end {hi:?}"))?;
    if lo == 0 || lo > hi {
        return Err(format!("range must satisfy 1 <= A <= B, got {lo}..{hi}"));
    }
    Ok((lo, hi))
}

/// A tiny splitmix64 stream for drawing one design point from one seed.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, options: &[usize]) -> usize {
        options[(self.next() % options.len() as u64) as usize]
    }

    fn in_range(&mut self, (lo, hi): (usize, usize)) -> usize {
        lo + (self.next() % (hi - lo + 1) as u64) as usize
    }
}

/// Powers of two inside the inclusive PE range.
fn pe_choices((lo, hi): (usize, usize)) -> Vec<usize> {
    let mut out = Vec::new();
    let mut p = 1usize;
    while p <= hi {
        if p >= lo {
            out.push(p);
        }
        p *= 2;
    }
    out
}

/// Draws sample `i`'s design point from its derived seed. The draw
/// depends only on the seed and the declared ranges — never on which
/// other samples run — so resumed runs reproduce the same grid.
fn sample_point(seed: u64, opts: &SweepOptions, pes: &[usize]) -> DesignPoint {
    let mut rng = SplitMix(seed);
    DesignPoint {
        m: rng.in_range(opts.m_range),
        n_pe: rng.pick(pes),
        input_bus_bytes: rng.pick(&BUS_CHOICES),
        input_buf_bytes: rng.pick(&INPUT_BUF_CHOICES),
        coef_buf_bytes: rng.pick(&COEF_BUF_CHOICES),
        psum_buf_bytes: rng.pick(&PSUM_BUF_CHOICES),
        output_buf_bytes: rng.pick(&OUTPUT_BUF_CHOICES),
        sample_channels: rng.pick(&SAMPLE_CH_CHOICES),
    }
}

/// Prime bases of the eight Halton dimensions (one per design knob, in
/// draw order).
const HALTON_PRIMES: [u64; 8] = [2, 3, 5, 7, 11, 13, 17, 19];

/// The radical inverse of `i` in `base`: reflect `i`'s base-`base` digits
/// across the radix point. Uniform in `[0, 1)` and low-discrepancy over
/// consecutive `i`.
fn radical_inverse(base: u64, mut i: u64) -> f64 {
    let mut inv = 0.0;
    let mut denom = 1.0;
    while i > 0 {
        denom *= base as f64;
        inv += (i % base) as f64 / denom;
        i /= base;
    }
    inv
}

/// Maps a `[0, 1)` fraction onto one of `options` (equal-width bins).
fn frac_pick(v: f64, options: &[usize]) -> usize {
    options[((v * options.len() as f64) as usize).min(options.len() - 1)]
}

/// Maps a `[0, 1)` fraction into an inclusive range (equal-width bins).
fn frac_in_range(v: f64, (lo, hi): (usize, usize)) -> usize {
    lo + ((v * (hi - lo + 1) as f64) as usize).min(hi - lo)
}

/// Draws sample `i`'s design point from the Halton sequence. The master
/// seed picks where in the (infinite) sequence the sweep starts, so
/// different seeds still explore different grids; like [`sample_point`]
/// the draw depends only on `(sample, master seed, ranges)`.
fn halton_point(sample: usize, opts: &SweepOptions, pes: &[usize]) -> DesignPoint {
    // Offset past the degenerate i=0 prefix; bounded so the radical
    // inverse stays cheap.
    let i = sample as u64 + 1 + opts.master_seed % 8191;
    let dim = |d: usize| radical_inverse(HALTON_PRIMES[d], i);
    DesignPoint {
        m: frac_in_range(dim(0), opts.m_range),
        n_pe: frac_pick(dim(1), pes),
        input_bus_bytes: frac_pick(dim(2), &BUS_CHOICES),
        input_buf_bytes: frac_pick(dim(3), &INPUT_BUF_CHOICES),
        coef_buf_bytes: frac_pick(dim(4), &COEF_BUF_CHOICES),
        psum_buf_bytes: frac_pick(dim(5), &PSUM_BUF_CHOICES),
        output_buf_bytes: frac_pick(dim(6), &OUTPUT_BUF_CHOICES),
        sample_channels: frac_pick(dim(7), &SAMPLE_CH_CHOICES),
    }
}

/// One evaluated `(network, design point)` — the record a stream line
/// round-trips.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Resume key (`{network}/s{sample:03}-{seed:016x}-n{input_seeds}`).
    pub key: String,
    /// Zoo network name.
    pub network: String,
    /// Sample index within the sweep.
    pub sample: u64,
    /// The sample's derived seed.
    pub seed: u64,
    /// The sampled design point.
    pub point: DesignPoint,
    /// Input seeds averaged.
    pub input_seeds: u64,
    /// Mean total cycles.
    pub cycles: f64,
    /// Mean DRAM traffic in MB.
    pub dram_mb: f64,
    /// Mean total energy in mJ.
    pub energy_mj: f64,
    /// Modeled chip area in mm².
    pub area_mm2: f64,
}

impl SweepRecord {
    /// Renders the record as one `escalate-sweep/v1` JSON line.
    pub fn to_json_line(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", SWEEP_SCHEMA);
        w.field_str("key", &self.key);
        w.field_str("network", &self.network);
        w.field_u64("sample", self.sample);
        w.field_u64("seed", self.seed);
        w.field_u64("m", self.point.m as u64);
        w.field_u64("n_pe", self.point.n_pe as u64);
        w.field_u64("input_bus_bytes", self.point.input_bus_bytes as u64);
        w.field_u64("input_buf_bytes", self.point.input_buf_bytes as u64);
        w.field_u64("coef_buf_bytes", self.point.coef_buf_bytes as u64);
        w.field_u64("psum_buf_bytes", self.point.psum_buf_bytes as u64);
        w.field_u64("output_buf_bytes", self.point.output_buf_bytes as u64);
        w.field_u64("sample_channels", self.point.sample_channels as u64);
        w.field_u64("input_seeds", self.input_seeds);
        w.field_f64("cycles", self.cycles);
        w.field_f64("dram_mb", self.dram_mb);
        w.field_f64("energy_mj", self.energy_mj);
        w.field_f64("area_mm2", self.area_mm2);
        w.end_object();
        w.finish()
    }

    /// Parses one stream line back into a record (`None` on any missing
    /// or mistyped field — e.g. a torn tail line).
    pub fn from_json_line(line: &str) -> Option<SweepRecord> {
        if json_string_field(line, "schema")? != SWEEP_SCHEMA {
            return None;
        }
        let u = |k: &str| json_u64_field(line, k);
        Some(SweepRecord {
            key: json_string_field(line, "key")?,
            network: json_string_field(line, "network")?,
            sample: u("sample")?,
            seed: u("seed")?,
            point: DesignPoint {
                m: u("m")? as usize,
                n_pe: u("n_pe")? as usize,
                input_bus_bytes: u("input_bus_bytes")? as usize,
                input_buf_bytes: u("input_buf_bytes")? as usize,
                coef_buf_bytes: u("coef_buf_bytes")? as usize,
                psum_buf_bytes: u("psum_buf_bytes")? as usize,
                output_buf_bytes: u("output_buf_bytes")? as usize,
                sample_channels: u("sample_channels")? as usize,
            },
            input_seeds: u("input_seeds")?,
            cycles: json_f64_field(line, "cycles")?,
            dram_mb: json_f64_field(line, "dram_mb")?,
            energy_mj: json_f64_field(line, "energy_mj")?,
            area_mm2: json_f64_field(line, "area_mm2")?,
        })
    }
}

/// The sweep grid as a [`RunPlan`]: networks outer, samples inner, so the
/// stream groups each network's records together. Sample `i` draws the
/// same design point on every network (same derived seed), which is what
/// makes per-network frontiers comparable.
pub struct SweepPlan {
    opts: SweepOptions,
}

impl SweepPlan {
    /// Wraps validated options (validation itself happens in `units`).
    pub fn new(opts: SweepOptions) -> SweepPlan {
        SweepPlan { opts }
    }

    fn key(&self, network: &str, sample: usize, seed: u64) -> String {
        // The key pins everything that changes the record's bytes:
        // network, sample index, the derived seed (covers master seed and
        // ranges only through the draw — the seed alone already
        // distinguishes master seeds), and the input-seed count. The
        // Halton sampler marks its keys `h` instead of `s`, so a resumed
        // stream can never splice records from the other sampler's grid.
        let marker = match self.opts.sampler {
            Sampler::Uniform => 's',
            Sampler::Halton => 'h',
        };
        // A pipelined sweep reports different cycle numbers, so its keys
        // carry a suffix — a resumed stream can never splice serial
        // records into a pipelined run (serial keys stay unchanged, which
        // keeps every pre-existing stream resumable).
        let schedule = match self.opts.schedule {
            ScheduleKind::LayerSerial => "",
            ScheduleKind::Pipelined => "-pipelined",
        };
        format!(
            "{network}/{marker}{sample:03}-{seed:016x}-n{}{schedule}",
            self.opts.input_seeds
        )
    }

    /// Draws the design point for `(sample, seed)` under the configured
    /// sampler.
    fn point_for(&self, sample: usize, seed: u64, pes: &[usize]) -> DesignPoint {
        match self.opts.sampler {
            Sampler::Uniform => sample_point(seed, &self.opts, pes),
            Sampler::Halton => halton_point(sample, &self.opts, pes),
        }
    }
}

impl RunPlan for SweepPlan {
    fn name(&self) -> &str {
        "sweep"
    }

    fn units(&self) -> Result<Vec<WorkUnit>, ExpError> {
        if self.opts.samples == 0 {
            return Err(ExpError::Msg("--samples must be positive".into()));
        }
        if pe_choices(self.opts.pe_range).is_empty() {
            return Err(ExpError::Msg(format!(
                "no power-of-two PE count in {}..{}",
                self.opts.pe_range.0, self.opts.pe_range.1
            )));
        }
        let mut units = Vec::with_capacity(self.opts.networks.len() * self.opts.samples);
        for (ni, network) in self.opts.networks.iter().enumerate() {
            if let Err(e) = escalate_models::resolve(network) {
                return Err(ExpError::Msg(e.to_string()));
            }
            for s in 0..self.opts.samples {
                let seed = plan::unit_seed(self.opts.master_seed, s as u64);
                units.push(WorkUnit {
                    key: self.key(network, s, seed),
                    seed,
                    index: ni * self.opts.samples + s,
                });
            }
        }
        Ok(units)
    }

    fn run_unit(&self, unit: &WorkUnit) -> Result<UnitOutput, ExpError> {
        let sample = unit.index % self.opts.samples;
        let network = &self.opts.networks[unit.index / self.opts.samples];
        let profile =
            escalate_models::resolve(network).map_err(|e| ExpError::Msg(e.to_string()))?;
        let pes = pe_choices(self.opts.pe_range);
        let point = self.point_for(sample, unit.seed, &pes);
        let mut cfg = point.to_config();
        cfg.threads = self.opts.threads;
        cfg.schedule = self.opts.schedule;
        // The sweep's whole point is thousands of design points over a few
        // `(network, M)` pairs: share every hardware-invariant derived
        // artifact — compression, the workload, activation masks, compiled
        // position plans — across points. Results are bit-identical to a
        // cold run (the caches replay/verify, never approximate).
        cfg.share_derived = true;
        let workload = crate::workload_cached(
            &profile,
            &CompressionConfig {
                m: cfg.m,
                reuse_units: true,
                ..CompressionConfig::default()
            },
        )?;
        let run = crate::run_escalate_workload(&workload, &cfg, self.opts.input_seeds);
        let record = SweepRecord {
            key: unit.key.clone(),
            network: network.clone(),
            sample: sample as u64,
            seed: unit.seed,
            point,
            input_seeds: self.opts.input_seeds,
            cycles: run.cycles,
            dram_mb: run.dram_bytes / 1e6,
            energy_mj: run.energy_pj / 1e9,
            area_mm2: escalate_energy::chip_area_mm2(&cfg),
        };
        let mut table = crate::experiments::Table::new("sweep", "design-space sweep");
        crate::tline!(
            table,
            "{}: cycles {:.0}, energy {:.3} mJ, area {:.2} mm2",
            unit.key,
            record.cycles,
            record.energy_mj,
            record.area_mm2
        );
        Ok(UnitOutput {
            table,
            jsonl: vec![record.to_json_line()],
        })
    }

    fn schedule(&self, pending: &[&WorkUnit]) -> Option<Vec<usize>> {
        // Execute points grouped by their shared derived state: first by
        // network, then by `M` (the compression/workload cache key), then
        // by the fidelity knob (the plan-cache key includes the channel
        // sample). Adjacent units hit the caches while their entries are
        // hot, so small capacities stop thrashing on large grids. The
        // stable sort keeps enumeration order inside each group, and the
        // sink feed is unit-ordered regardless — the schedule cannot
        // change output bytes.
        let pes = pe_choices(self.opts.pe_range);
        if pes.is_empty() {
            return None;
        }
        let mut order: Vec<usize> = (0..pending.len()).collect();
        order.sort_by_key(|&i| {
            let unit = pending[i];
            let sample = unit.index % self.opts.samples;
            let point = self.point_for(sample, unit.seed, &pes);
            (
                unit.index / self.opts.samples,
                point.m,
                point.sample_channels,
            )
        });
        Some(order)
    }
}

/// Whether `a` strictly dominates `b` when minimizing every coordinate:
/// no worse on all three, strictly better on at least one.
fn dominates(a: &(f64, f64, f64), b: &(f64, f64, f64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && a.2 <= b.2 && (a.0 < b.0 || a.1 < b.1 || a.2 < b.2)
}

/// Indices of the Pareto-optimal points when minimizing every coordinate
/// of `(cycles, energy, area)`: a point survives unless some other point
/// is no worse on all three and strictly better on at least one.
///
/// The batch reference implementation — O(n²) over the whole set every
/// call. Streaming consumers use [`ParetoFrontier`], which maintains the
/// identical set online; this stays as the differential oracle.
pub fn pareto_indices(points: &[(f64, f64, f64)]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| !points.iter().any(|p| dominates(p, &points[i])))
        .collect()
}

/// An online Pareto frontier over `(cycles, energy, area)`: points stream
/// in one at a time and the structure keeps exactly the undominated ones.
///
/// Each insert compares the candidate against current *members only*
/// (frontiers are tiny next to the streams that feed them), discarding it
/// if any member strictly dominates it — by transitivity nothing the
/// member already beat needs re-checking — and otherwise evicting the
/// members it strictly dominates. Equal points never dominate each other,
/// so duplicates coexist, exactly as in [`pareto_indices`]; the final
/// member set is identical to the batch recompute for every input order.
#[derive(Debug, Default)]
pub struct ParetoFrontier {
    /// Undominated `(insertion index, metrics)` pairs, in insertion order.
    members: Vec<(usize, (f64, f64, f64))>,
    /// Dominance comparisons performed so far (the frontier-update cost a
    /// sweep reports as `sweep.frontier_comparisons`).
    comparisons: u64,
}

impl ParetoFrontier {
    /// An empty frontier.
    pub fn new() -> ParetoFrontier {
        ParetoFrontier::default()
    }

    /// Offers one point; keeps the frontier exactly Pareto-optimal.
    pub fn insert(&mut self, index: usize, point: (f64, f64, f64)) {
        for (_, member) in &self.members {
            self.comparisons += 1;
            if dominates(member, &point) {
                return;
            }
        }
        let mut evictions = 0u64;
        self.members.retain(|(_, member)| {
            evictions += 1;
            !dominates(&point, member)
        });
        self.comparisons += evictions;
        self.members.push((index, point));
    }

    /// Indices of the surviving points, ascending — the same order
    /// [`pareto_indices`] returns.
    pub fn indices(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = self.members.iter().map(|&(i, _)| i).collect();
        idx.sort_unstable();
        idx
    }

    /// Frontier size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no point survived (or none was offered).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Total dominance comparisons across all inserts.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }
}

/// Renders one network's Pareto frontier table (rows sorted by cycles).
fn render_frontier(
    out: &mut dyn Write,
    network: &str,
    records: &[SweepRecord],
) -> std::io::Result<()> {
    let mut front = ParetoFrontier::new();
    for (i, r) in records.iter().enumerate() {
        front.insert(i, (r.cycles, r.energy_mj, r.area_mm2));
    }
    escalate_obs::counter_add("sweep.frontier_comparisons", front.comparisons());
    let mut frontier = front.indices();
    frontier.sort_by(|&a, &b| {
        records[a]
            .cycles
            .total_cmp(&records[b].cycles)
            .then(records[a].sample.cmp(&records[b].sample))
    });
    writeln!(
        out,
        "Pareto frontier - {network} ({} of {} sampled point(s), minimizing cycles/energy/area)",
        frontier.len(),
        records.len()
    )?;
    writeln!(
        out,
        "{:>6} {:>3} {:>5} {:>4} {:>7} {:>5} {:>5} {:>7} {:>3} {:>12} {:>10} {:>9}",
        "sample",
        "m",
        "n_pe",
        "bus",
        "in_buf",
        "coef",
        "psum",
        "out_buf",
        "ch",
        "cycles",
        "energy_mj",
        "area_mm2"
    )?;
    for &i in &frontier {
        let r = &records[i];
        writeln!(
            out,
            "{:>6} {:>3} {:>5} {:>4} {:>7} {:>5} {:>5} {:>7} {:>3} {:>12.0} {:>10.3} {:>9.2}",
            r.sample,
            r.point.m,
            r.point.n_pe,
            r.point.input_bus_bytes,
            r.point.input_buf_bytes,
            r.point.coef_buf_bytes,
            r.point.psum_buf_bytes,
            r.point.output_buf_bytes,
            r.point.sample_channels,
            r.cycles,
            r.energy_mj,
            r.area_mm2
        )?;
    }
    Ok(())
}

/// The stderr warning for a sweep whose distinct `(network, M)` artifact
/// working set exceeds the artifact-cache capacity, or `None` when the
/// cache held (unbounded cache, working set fits, or nothing was actually
/// evicted — e.g. a fully resumed run never compressed at all).
fn cache_thrash_warning(distinct: usize, capacity: usize, evictions: u64) -> Option<String> {
    if capacity == 0 || distinct <= capacity || evictions == 0 {
        return None;
    }
    Some(format!(
        "warning: sweep visits {distinct} distinct (network, M) artifact(s) but the \
         artifact cache holds {capacity} ({}); {evictions} eviction(s) forced recompression \
         — raise {} to at least {distinct} to compress each pair once",
        crate::CACHE_CAP_ENV,
        crate::CACHE_CAP_ENV,
    ))
}

/// Runs (or resumes) a sweep: executes the grid through the shared plan
/// layer with the JSONL sink — units scheduled by shared `(network, M)`
/// state, each point simulating with the derived-state caches on — then
/// renders each network's Pareto frontier from the full parsed stream, so
/// a resumed run prints exactly what the uninterrupted run would have.
/// With a golden configured, the frontier bytes are checked against (or
/// rewritten to) the file.
///
/// # Errors
///
/// Returns an [`ExpError`] on invalid options, simulation failures,
/// stream I/O failures, or frontier drift from a checked golden.
pub fn run_sweep(opts: &SweepOptions, out: &mut dyn Write) -> Result<(), ExpError> {
    escalate_core::par::configure_threads(opts.threads);
    let plan = SweepPlan::new(opts.clone());
    let units = plan.units()?; // validate before touching the stream
    let evictions_before = crate::artifact_cache_evictions();
    let mut sink = JsonlSink::open(&opts.out)?;
    let summary = plan::execute(&plan, &mut sink)?;
    // Warn (once, on stderr) when the grid's artifact working set cannot
    // fit the cache: every revisit of an evicted (network, M) pair
    // recompresses from scratch, usually the dominant cost of the run.
    let pes = pe_choices(opts.pe_range);
    let mut pairs: Vec<(usize, usize)> = units
        .iter()
        .map(|u| {
            let point = plan.point_for(u.index % opts.samples, u.seed, &pes);
            (u.index / opts.samples, point.m)
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    let evicted = crate::artifact_cache_evictions() - evictions_before;
    if let Some(msg) = cache_thrash_warning(pairs.len(), crate::artifact_cache_capacity(), evicted)
    {
        eprintln!("{msg}");
    }
    writeln!(
        out,
        "sweep: {} sample(s) ran, {} resumed -> {}",
        summary.ran,
        summary.skipped,
        sink.path().display()
    )?;
    // Frontiers render into a buffer first, so the same bytes can serve
    // the terminal and the golden check/update.
    let mut front_buf: Vec<u8> = Vec::new();
    for network in &opts.networks {
        let mut records = Vec::with_capacity(opts.samples);
        for unit in units
            .iter()
            .filter(|u| u.key.starts_with(&format!("{network}/")))
        {
            let lines = sink.lines_for(&unit.key).ok_or_else(|| {
                ExpError::Msg(format!("stream is missing a record for {}", unit.key))
            })?;
            for line in lines {
                records.push(SweepRecord::from_json_line(line).ok_or_else(|| {
                    ExpError::Msg(format!("unparseable stream record for {}", unit.key))
                })?);
            }
        }
        writeln!(front_buf)?;
        render_frontier(&mut front_buf, network, &records)?;
    }
    out.write_all(&front_buf)?;
    match &opts.golden {
        None => {}
        Some((path, GoldenMode::Update)) => {
            std::fs::write(path, &front_buf)
                .map_err(|e| ExpError::Msg(format!("cannot write {}: {e}", path.display())))?;
            writeln!(out, "frontier golden updated -> {}", path.display())?;
        }
        Some((path, GoldenMode::Check)) => {
            let want = std::fs::read(path)
                .map_err(|e| ExpError::Msg(format!("cannot read {}: {e}", path.display())))?;
            if want != front_buf {
                return Err(ExpError::Msg(format!(
                    "frontier drift vs {} (rerun with --update to accept the new frontier)",
                    path.display()
                )));
            }
            writeln!(out, "frontier matches {}", path.display())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_range_accepts_inclusive_ranges_only() {
        assert_eq!(parse_range("4..8"), Ok((4, 8)));
        assert_eq!(parse_range("6..6"), Ok((6, 6)));
        assert!(parse_range("8..4").is_err(), "reversed");
        assert!(parse_range("0..4").is_err(), "zero start");
        assert!(parse_range("4-8").is_err(), "wrong separator");
        assert!(parse_range("a..b").is_err(), "not numbers");
    }

    #[test]
    fn pe_choices_are_the_powers_of_two_in_range() {
        assert_eq!(pe_choices((8, 64)), [8, 16, 32, 64]);
        assert_eq!(pe_choices((9, 31)), [16]);
        assert!(pe_choices((33, 63)).is_empty());
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let opts = SweepOptions::default();
        let pes = pe_choices(opts.pe_range);
        for s in 0..64u64 {
            let seed = plan::unit_seed(opts.master_seed, s);
            let a = sample_point(seed, &opts, &pes);
            let b = sample_point(seed, &opts, &pes);
            assert_eq!(a, b, "same seed must redraw the same point");
            assert!(a.m >= opts.m_range.0 && a.m <= opts.m_range.1);
            assert!(pes.contains(&a.n_pe));
            assert!(BUS_CHOICES.contains(&a.input_bus_bytes));
            assert!(INPUT_BUF_CHOICES.contains(&a.input_buf_bytes));
        }
        // Distinct seeds explore the space (not a constant draw).
        let pts: Vec<DesignPoint> = (0..16)
            .map(|s| sample_point(plan::unit_seed(42, s), &opts, &pes))
            .collect();
        assert!(pts.iter().any(|p| p != &pts[0]), "sampler never varied");
    }

    #[test]
    fn sweep_units_group_by_network_and_share_sample_seeds() {
        let opts = SweepOptions {
            networks: vec!["MobileNet".into(), "VGG16".into()],
            samples: 3,
            ..SweepOptions::default()
        };
        let units = SweepPlan::new(opts).units().expect("units");
        assert_eq!(units.len(), 6);
        assert!(units[0].key.starts_with("MobileNet/s000"));
        assert!(units[3].key.starts_with("VGG16/s000"));
        // Sample i draws the same seed on every network.
        assert_eq!(units[0].seed, units[3].seed);
        assert_ne!(units[0].seed, units[1].seed);
        assert_eq!(units[4].index, 4);
    }

    #[test]
    fn sweep_units_reject_bad_inputs() {
        let unknown = SweepOptions {
            networks: vec!["NotANet".into()],
            ..SweepOptions::default()
        };
        assert!(SweepPlan::new(unknown).units().is_err());
        let no_pe = SweepOptions {
            pe_range: (33, 63),
            ..SweepOptions::default()
        };
        assert!(SweepPlan::new(no_pe).units().is_err());
        let no_samples = SweepOptions {
            samples: 0,
            ..SweepOptions::default()
        };
        assert!(SweepPlan::new(no_samples).units().is_err());
    }

    #[test]
    fn sweep_records_round_trip_through_jsonl() {
        let rec = SweepRecord {
            key: "MobileNet/s001-00000000deadbeef-n2".into(),
            network: "MobileNet".into(),
            sample: 1,
            seed: 0xdead_beef,
            point: DesignPoint::table2(),
            input_seeds: 2,
            cycles: 123456.0,
            dram_mb: 12.5,
            energy_mj: 3.25,
            area_mm2: 7.5,
        };
        let line = rec.to_json_line();
        assert!(line.contains("\"schema\": \"escalate-sweep/v1\""));
        assert_eq!(SweepRecord::from_json_line(&line), Some(rec));
        assert_eq!(SweepRecord::from_json_line("{\"key\": \"torn"), None);
        let wrong_schema = line.replace("escalate-sweep/v1", "escalate-other/v9");
        assert_eq!(SweepRecord::from_json_line(&wrong_schema), None);
    }

    #[test]
    fn halton_sampling_is_deterministic_in_range_and_seed_sensitive() {
        let opts = SweepOptions {
            sampler: Sampler::Halton,
            ..SweepOptions::default()
        };
        let pes = pe_choices(opts.pe_range);
        for s in 0..64 {
            let a = halton_point(s, &opts, &pes);
            assert_eq!(a, halton_point(s, &opts, &pes), "same sample redraws");
            assert!(a.m >= opts.m_range.0 && a.m <= opts.m_range.1);
            assert!(pes.contains(&a.n_pe));
            assert!(BUS_CHOICES.contains(&a.input_bus_bytes));
            assert!(INPUT_BUF_CHOICES.contains(&a.input_buf_bytes));
            assert!(COEF_BUF_CHOICES.contains(&a.coef_buf_bytes));
            assert!(PSUM_BUF_CHOICES.contains(&a.psum_buf_bytes));
            assert!(OUTPUT_BUF_CHOICES.contains(&a.output_buf_bytes));
            assert!(SAMPLE_CH_CHOICES.contains(&a.sample_channels));
        }
        let pts: Vec<DesignPoint> = (0..16).map(|s| halton_point(s, &opts, &pes)).collect();
        assert!(pts.iter().any(|p| p != &pts[0]), "sampler never varied");
        let other = SweepOptions {
            master_seed: 7,
            ..opts.clone()
        };
        let moved: Vec<DesignPoint> = (0..16).map(|s| halton_point(s, &other, &pes)).collect();
        assert_ne!(pts, moved, "master seed must move the sequence");
    }

    #[test]
    fn halton_covers_the_m_range_evenly_at_small_sample_counts() {
        // 16 consecutive base-2 radical inverses hit every one of the 5
        // M bins — the whole point of a low-discrepancy draw.
        let opts = SweepOptions {
            sampler: Sampler::Halton,
            ..SweepOptions::default()
        };
        let pes = pe_choices(opts.pe_range);
        let mut seen: Vec<usize> = (0..16).map(|s| halton_point(s, &opts, &pes).m).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, [4, 5, 6, 7, 8], "every M bin visited");
    }

    #[test]
    fn sampler_parses_and_marks_keys_distinctly() {
        assert_eq!(Sampler::parse("uniform"), Ok(Sampler::Uniform));
        assert_eq!(Sampler::parse("halton"), Ok(Sampler::Halton));
        assert!(Sampler::parse("sobol").is_err());
        let uniform = SweepPlan::new(SweepOptions {
            networks: vec!["MobileNet".into()],
            samples: 1,
            ..SweepOptions::default()
        });
        let halton = SweepPlan::new(SweepOptions {
            networks: vec!["MobileNet".into()],
            samples: 1,
            sampler: Sampler::Halton,
            ..SweepOptions::default()
        });
        let uk = &uniform.units().expect("units")[0].key;
        let hk = &halton.units().expect("units")[0].key;
        assert!(uk.starts_with("MobileNet/s000"), "{uk}");
        assert!(hk.starts_with("MobileNet/h000"), "{hk}");
        assert_ne!(uk, hk, "the two samplers may never share resume keys");
    }

    #[test]
    fn schedule_groups_pending_units_by_network_then_m() {
        let opts = SweepOptions {
            networks: vec!["MobileNet".into(), "VGG16".into()],
            samples: 16,
            ..SweepOptions::default()
        };
        let plan = SweepPlan::new(opts.clone());
        let units = plan.units().expect("units");
        let pending: Vec<&WorkUnit> = units.iter().collect();
        let order = plan.schedule(&pending).expect("sweep schedules");
        // Valid permutation.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..pending.len()).collect::<Vec<_>>());
        // (network, M) never interleaves: each pair appears as one run.
        let pes = pe_choices(opts.pe_range);
        let keys: Vec<(usize, usize)> = order
            .iter()
            .map(|&i| {
                let u = pending[i];
                let p = plan.point_for(u.index % opts.samples, u.seed, &pes);
                (u.index / opts.samples, p.m)
            })
            .collect();
        let mut seen: Vec<(usize, usize)> = Vec::new();
        for k in keys {
            if seen.last() != Some(&k) {
                assert!(!seen.contains(&k), "group {k:?} appeared twice");
                seen.push(k);
            }
        }
    }

    #[test]
    fn online_frontier_matches_the_batch_oracle() {
        // Pseudo-random points (LCG; no external entropy) in several
        // orders — the online structure must agree with the O(n²) oracle
        // on every prefix-independent final set.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64
        };
        let pts: Vec<(f64, f64, f64)> = (0..200).map(|_| (next(), next(), next())).collect();
        let mut front = ParetoFrontier::new();
        for (i, p) in pts.iter().enumerate() {
            front.insert(i, *p);
        }
        assert_eq!(front.indices(), pareto_indices(&pts));
        assert!(front.comparisons() > 0);
        // Duplicates of a frontier point coexist, as in the oracle.
        let dup = [(1.0, 2.0, 3.0), (1.0, 2.0, 3.0), (2.0, 3.0, 4.0)];
        let mut f = ParetoFrontier::new();
        for (i, p) in dup.iter().enumerate() {
            f.insert(i, *p);
        }
        assert_eq!(f.indices(), pareto_indices(&dup));
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
        assert!(ParetoFrontier::new().is_empty());
    }

    #[test]
    fn thrash_warning_fires_only_for_undersized_caches() {
        assert_eq!(cache_thrash_warning(4, 0, 9), None, "unbounded cache");
        assert_eq!(cache_thrash_warning(4, 4, 9), None, "working set fits");
        assert_eq!(cache_thrash_warning(4, 8, 9), None, "cache larger");
        assert_eq!(cache_thrash_warning(4, 2, 0), None, "nothing evicted");
        let msg = cache_thrash_warning(4, 2, 9).expect("undersized cache warns");
        assert!(msg.contains("4 distinct"), "{msg}");
        assert!(msg.contains("9 eviction(s)"), "{msg}");
        assert!(msg.contains(crate::CACHE_CAP_ENV), "{msg}");
    }

    #[test]
    fn pareto_keeps_exactly_the_undominated_points() {
        let pts = [
            (10.0, 5.0, 2.0), // frontier (fastest)
            (20.0, 1.0, 3.0), // frontier (lowest energy)
            (15.0, 6.0, 2.5), // dominated by #0
            (10.0, 5.0, 2.0), // duplicate of #0: neither strictly dominates
            (25.0, 2.0, 1.0), // frontier (smallest)
        ];
        assert_eq!(pareto_indices(&pts), [0, 1, 3, 4]);
        assert!(pareto_indices(&[]).is_empty());
        assert_eq!(pareto_indices(&[(1.0, 1.0, 1.0)]), [0]);
    }
}
