//! The design-space sweep behind `escalate sweep`: the second consumer of
//! the [`crate::plan`] layer (the first is the experiment registry).
//!
//! The sweep samples accelerator design points — `M`, PE count, input bus
//! width, the four buffer capacities, and the host `sample_channels`
//! fidelity knob — from declared ranges, runs each point through the
//! ESCALATE simulator on each requested zoo network, and streams one
//! JSONL record per `(network, sample)` to an append-only file. Sampling
//! is deterministic: sample `i` derives its own seed via
//! [`plan::unit_seed`] from the master seed, so the same command line
//! enumerates the same design points at any thread count, and a resumed
//! run (the [`plan::JsonlSink`] skips already-recorded keys) appends
//! exactly the missing records — byte-identical to an uninterrupted run.
//!
//! The summary is always computed from the *parsed stream* (resumed and
//! fresh records alike), so a cold run and a resumed one render the same
//! Pareto frontier: per network, the sampled points not strictly
//! dominated on (cycles, energy, area).

use crate::experiments::ExpError;
use crate::plan::{self, JsonlSink, RunPlan, UnitOutput, WorkUnit};
use escalate_core::pipeline::CompressionConfig;
use escalate_models::ModelProfile;
use escalate_obs::{json_f64_field, json_string_field, json_u64_field, JsonWriter};
use escalate_sim::DesignPoint;
use std::io::Write;
use std::path::PathBuf;

/// Schema identifier of one sweep stream record (sibling of
/// `escalate-report/v1`).
pub const SWEEP_SCHEMA: &str = "escalate-sweep/v1";

/// Candidate input bus widths (bytes).
const BUS_CHOICES: [usize; 4] = [8, 16, 32, 64];
/// Candidate per-buffer input-buffer capacities (bytes).
const INPUT_BUF_CHOICES: [usize; 3] = [4096, 8192, 16384];
/// Candidate coefficient-buffer capacities (bytes).
const COEF_BUF_CHOICES: [usize; 3] = [256, 512, 1024];
/// Candidate partial-sum-buffer capacities (bytes).
const PSUM_BUF_CHOICES: [usize; 3] = [1024, 2048, 4096];
/// Candidate output-buffer capacities (bytes).
const OUTPUT_BUF_CHOICES: [usize; 3] = [2048, 4096, 8192];
/// Candidate `sample_channels` fidelity settings.
const SAMPLE_CH_CHOICES: [usize; 3] = [4, 8, 16];

/// What `escalate sweep` was asked to do.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Zoo networks to evaluate every sampled point on (sweep positional
    /// arguments; default: the full evaluated zoo).
    pub networks: Vec<String>,
    /// Design points sampled per network (`--samples`).
    pub samples: usize,
    /// Master seed the per-sample seeds derive from (`--seed`).
    pub master_seed: u64,
    /// Input seeds averaged per simulation (`--seeds`).
    pub input_seeds: u64,
    /// Host threads (`--threads`; `0` = auto).
    pub threads: usize,
    /// JSONL stream path (`--out`); appended to on resume.
    pub out: PathBuf,
    /// Inclusive range of `M` (`--m A..B`).
    pub m_range: (usize, usize),
    /// Inclusive range of PE counts (`--pe A..B`); only powers of two in
    /// the range are sampled.
    pub pe_range: (usize, usize),
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            networks: ModelProfile::all().iter().map(|p| p.name.into()).collect(),
            samples: 8,
            master_seed: 42,
            input_seeds: 2,
            threads: 0,
            out: PathBuf::from("sweep.jsonl"),
            m_range: (4, 8),
            pe_range: (8, 64),
        }
    }
}

/// Parses an inclusive `A..B` range (e.g. `--m 4..8`).
///
/// # Errors
///
/// Returns a usage message when the syntax or ordering is invalid.
pub fn parse_range(s: &str) -> Result<(usize, usize), String> {
    let (lo, hi) = s
        .split_once("..")
        .ok_or_else(|| format!("expected an inclusive range like 4..8, got {s:?}"))?;
    let lo: usize = lo
        .trim()
        .parse()
        .map_err(|_| format!("bad range start {lo:?}"))?;
    let hi: usize = hi
        .trim()
        .parse()
        .map_err(|_| format!("bad range end {hi:?}"))?;
    if lo == 0 || lo > hi {
        return Err(format!("range must satisfy 1 <= A <= B, got {lo}..{hi}"));
    }
    Ok((lo, hi))
}

/// A tiny splitmix64 stream for drawing one design point from one seed.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, options: &[usize]) -> usize {
        options[(self.next() % options.len() as u64) as usize]
    }

    fn in_range(&mut self, (lo, hi): (usize, usize)) -> usize {
        lo + (self.next() % (hi - lo + 1) as u64) as usize
    }
}

/// Powers of two inside the inclusive PE range.
fn pe_choices((lo, hi): (usize, usize)) -> Vec<usize> {
    let mut out = Vec::new();
    let mut p = 1usize;
    while p <= hi {
        if p >= lo {
            out.push(p);
        }
        p *= 2;
    }
    out
}

/// Draws sample `i`'s design point from its derived seed. The draw
/// depends only on the seed and the declared ranges — never on which
/// other samples run — so resumed runs reproduce the same grid.
fn sample_point(seed: u64, opts: &SweepOptions, pes: &[usize]) -> DesignPoint {
    let mut rng = SplitMix(seed);
    DesignPoint {
        m: rng.in_range(opts.m_range),
        n_pe: rng.pick(pes),
        input_bus_bytes: rng.pick(&BUS_CHOICES),
        input_buf_bytes: rng.pick(&INPUT_BUF_CHOICES),
        coef_buf_bytes: rng.pick(&COEF_BUF_CHOICES),
        psum_buf_bytes: rng.pick(&PSUM_BUF_CHOICES),
        output_buf_bytes: rng.pick(&OUTPUT_BUF_CHOICES),
        sample_channels: rng.pick(&SAMPLE_CH_CHOICES),
    }
}

/// One evaluated `(network, design point)` — the record a stream line
/// round-trips.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Resume key (`{network}/s{sample:03}-{seed:016x}-n{input_seeds}`).
    pub key: String,
    /// Zoo network name.
    pub network: String,
    /// Sample index within the sweep.
    pub sample: u64,
    /// The sample's derived seed.
    pub seed: u64,
    /// The sampled design point.
    pub point: DesignPoint,
    /// Input seeds averaged.
    pub input_seeds: u64,
    /// Mean total cycles.
    pub cycles: f64,
    /// Mean DRAM traffic in MB.
    pub dram_mb: f64,
    /// Mean total energy in mJ.
    pub energy_mj: f64,
    /// Modeled chip area in mm².
    pub area_mm2: f64,
}

impl SweepRecord {
    /// Renders the record as one `escalate-sweep/v1` JSON line.
    pub fn to_json_line(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", SWEEP_SCHEMA);
        w.field_str("key", &self.key);
        w.field_str("network", &self.network);
        w.field_u64("sample", self.sample);
        w.field_u64("seed", self.seed);
        w.field_u64("m", self.point.m as u64);
        w.field_u64("n_pe", self.point.n_pe as u64);
        w.field_u64("input_bus_bytes", self.point.input_bus_bytes as u64);
        w.field_u64("input_buf_bytes", self.point.input_buf_bytes as u64);
        w.field_u64("coef_buf_bytes", self.point.coef_buf_bytes as u64);
        w.field_u64("psum_buf_bytes", self.point.psum_buf_bytes as u64);
        w.field_u64("output_buf_bytes", self.point.output_buf_bytes as u64);
        w.field_u64("sample_channels", self.point.sample_channels as u64);
        w.field_u64("input_seeds", self.input_seeds);
        w.field_f64("cycles", self.cycles);
        w.field_f64("dram_mb", self.dram_mb);
        w.field_f64("energy_mj", self.energy_mj);
        w.field_f64("area_mm2", self.area_mm2);
        w.end_object();
        w.finish()
    }

    /// Parses one stream line back into a record (`None` on any missing
    /// or mistyped field — e.g. a torn tail line).
    pub fn from_json_line(line: &str) -> Option<SweepRecord> {
        if json_string_field(line, "schema")? != SWEEP_SCHEMA {
            return None;
        }
        let u = |k: &str| json_u64_field(line, k);
        Some(SweepRecord {
            key: json_string_field(line, "key")?,
            network: json_string_field(line, "network")?,
            sample: u("sample")?,
            seed: u("seed")?,
            point: DesignPoint {
                m: u("m")? as usize,
                n_pe: u("n_pe")? as usize,
                input_bus_bytes: u("input_bus_bytes")? as usize,
                input_buf_bytes: u("input_buf_bytes")? as usize,
                coef_buf_bytes: u("coef_buf_bytes")? as usize,
                psum_buf_bytes: u("psum_buf_bytes")? as usize,
                output_buf_bytes: u("output_buf_bytes")? as usize,
                sample_channels: u("sample_channels")? as usize,
            },
            input_seeds: u("input_seeds")?,
            cycles: json_f64_field(line, "cycles")?,
            dram_mb: json_f64_field(line, "dram_mb")?,
            energy_mj: json_f64_field(line, "energy_mj")?,
            area_mm2: json_f64_field(line, "area_mm2")?,
        })
    }
}

/// The sweep grid as a [`RunPlan`]: networks outer, samples inner, so the
/// stream groups each network's records together. Sample `i` draws the
/// same design point on every network (same derived seed), which is what
/// makes per-network frontiers comparable.
pub struct SweepPlan {
    opts: SweepOptions,
}

impl SweepPlan {
    /// Wraps validated options (validation itself happens in `units`).
    pub fn new(opts: SweepOptions) -> SweepPlan {
        SweepPlan { opts }
    }

    fn key(&self, network: &str, sample: usize, seed: u64) -> String {
        // The key pins everything that changes the record's bytes:
        // network, sample index, the derived seed (covers master seed and
        // ranges only through the draw — the seed alone already
        // distinguishes master seeds), and the input-seed count.
        format!(
            "{network}/s{sample:03}-{seed:016x}-n{}",
            self.opts.input_seeds
        )
    }
}

impl RunPlan for SweepPlan {
    fn name(&self) -> &str {
        "sweep"
    }

    fn units(&self) -> Result<Vec<WorkUnit>, ExpError> {
        if self.opts.samples == 0 {
            return Err(ExpError::Msg("--samples must be positive".into()));
        }
        if pe_choices(self.opts.pe_range).is_empty() {
            return Err(ExpError::Msg(format!(
                "no power-of-two PE count in {}..{}",
                self.opts.pe_range.0, self.opts.pe_range.1
            )));
        }
        let mut units = Vec::with_capacity(self.opts.networks.len() * self.opts.samples);
        for (ni, network) in self.opts.networks.iter().enumerate() {
            if ModelProfile::for_model(network).is_none() {
                return Err(ExpError::Msg(format!(
                    "unknown network {network:?} (see escalate models)"
                )));
            }
            for s in 0..self.opts.samples {
                let seed = plan::unit_seed(self.opts.master_seed, s as u64);
                units.push(WorkUnit {
                    key: self.key(network, s, seed),
                    seed,
                    index: ni * self.opts.samples + s,
                });
            }
        }
        Ok(units)
    }

    fn run_unit(&self, unit: &WorkUnit) -> Result<UnitOutput, ExpError> {
        let sample = unit.index % self.opts.samples;
        let network = &self.opts.networks[unit.index / self.opts.samples];
        let profile = ModelProfile::for_model(network)
            .ok_or_else(|| ExpError::Msg(format!("unknown network {network:?}")))?;
        let pes = pe_choices(self.opts.pe_range);
        let point = sample_point(unit.seed, &self.opts, &pes);
        let mut cfg = point.to_config();
        cfg.threads = self.opts.threads;
        let artifacts = crate::compress_cached(
            &profile,
            &CompressionConfig {
                m: cfg.m,
                ..CompressionConfig::default()
            },
        )?;
        let run = crate::run_escalate(&profile, &artifacts, &cfg, self.opts.input_seeds);
        let record = SweepRecord {
            key: unit.key.clone(),
            network: network.clone(),
            sample: sample as u64,
            seed: unit.seed,
            point,
            input_seeds: self.opts.input_seeds,
            cycles: run.cycles,
            dram_mb: run.dram_bytes / 1e6,
            energy_mj: run.energy_pj / 1e9,
            area_mm2: escalate_energy::chip_area_mm2(&cfg),
        };
        let mut table = crate::experiments::Table::new("sweep", "design-space sweep");
        crate::tline!(
            table,
            "{}: cycles {:.0}, energy {:.3} mJ, area {:.2} mm2",
            unit.key,
            record.cycles,
            record.energy_mj,
            record.area_mm2
        );
        Ok(UnitOutput {
            table,
            jsonl: vec![record.to_json_line()],
        })
    }
}

/// Indices of the Pareto-optimal points when minimizing every coordinate
/// of `(cycles, energy, area)`: a point survives unless some other point
/// is no worse on all three and strictly better on at least one.
pub fn pareto_indices(points: &[(f64, f64, f64)]) -> Vec<usize> {
    let dominates = |a: &(f64, f64, f64), b: &(f64, f64, f64)| {
        a.0 <= b.0 && a.1 <= b.1 && a.2 <= b.2 && (a.0 < b.0 || a.1 < b.1 || a.2 < b.2)
    };
    (0..points.len())
        .filter(|&i| !points.iter().any(|p| dominates(p, &points[i])))
        .collect()
}

/// Renders one network's Pareto frontier table (rows sorted by cycles).
fn render_frontier(
    out: &mut dyn Write,
    network: &str,
    records: &[SweepRecord],
) -> std::io::Result<()> {
    let metrics: Vec<(f64, f64, f64)> = records
        .iter()
        .map(|r| (r.cycles, r.energy_mj, r.area_mm2))
        .collect();
    let mut frontier = pareto_indices(&metrics);
    frontier.sort_by(|&a, &b| {
        records[a]
            .cycles
            .total_cmp(&records[b].cycles)
            .then(records[a].sample.cmp(&records[b].sample))
    });
    writeln!(
        out,
        "Pareto frontier - {network} ({} of {} sampled point(s), minimizing cycles/energy/area)",
        frontier.len(),
        records.len()
    )?;
    writeln!(
        out,
        "{:>6} {:>3} {:>5} {:>4} {:>7} {:>5} {:>5} {:>7} {:>3} {:>12} {:>10} {:>9}",
        "sample",
        "m",
        "n_pe",
        "bus",
        "in_buf",
        "coef",
        "psum",
        "out_buf",
        "ch",
        "cycles",
        "energy_mj",
        "area_mm2"
    )?;
    for &i in &frontier {
        let r = &records[i];
        writeln!(
            out,
            "{:>6} {:>3} {:>5} {:>4} {:>7} {:>5} {:>5} {:>7} {:>3} {:>12.0} {:>10.3} {:>9.2}",
            r.sample,
            r.point.m,
            r.point.n_pe,
            r.point.input_bus_bytes,
            r.point.input_buf_bytes,
            r.point.coef_buf_bytes,
            r.point.psum_buf_bytes,
            r.point.output_buf_bytes,
            r.point.sample_channels,
            r.cycles,
            r.energy_mj,
            r.area_mm2
        )?;
    }
    Ok(())
}

/// Runs (or resumes) a sweep: executes the grid through the shared plan
/// layer with the JSONL sink, then renders each network's Pareto
/// frontier from the full parsed stream — so a resumed run prints
/// exactly what the uninterrupted run would have.
///
/// # Errors
///
/// Returns an [`ExpError`] on invalid options, simulation failures, or
/// stream I/O failures.
pub fn run_sweep(opts: &SweepOptions, out: &mut dyn Write) -> Result<(), ExpError> {
    escalate_core::par::configure_threads(opts.threads);
    let plan = SweepPlan::new(opts.clone());
    let units = plan.units()?; // validate before touching the stream
    let mut sink = JsonlSink::open(&opts.out)?;
    let summary = plan::execute(&plan, &mut sink)?;
    writeln!(
        out,
        "sweep: {} sample(s) ran, {} resumed -> {}",
        summary.ran,
        summary.skipped,
        sink.path().display()
    )?;
    for network in &opts.networks {
        let mut records = Vec::with_capacity(opts.samples);
        for unit in units
            .iter()
            .filter(|u| u.key.starts_with(&format!("{network}/")))
        {
            let lines = sink.lines_for(&unit.key).ok_or_else(|| {
                ExpError::Msg(format!("stream is missing a record for {}", unit.key))
            })?;
            for line in lines {
                records.push(SweepRecord::from_json_line(line).ok_or_else(|| {
                    ExpError::Msg(format!("unparseable stream record for {}", unit.key))
                })?);
            }
        }
        writeln!(out)?;
        render_frontier(out, network, &records)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_range_accepts_inclusive_ranges_only() {
        assert_eq!(parse_range("4..8"), Ok((4, 8)));
        assert_eq!(parse_range("6..6"), Ok((6, 6)));
        assert!(parse_range("8..4").is_err(), "reversed");
        assert!(parse_range("0..4").is_err(), "zero start");
        assert!(parse_range("4-8").is_err(), "wrong separator");
        assert!(parse_range("a..b").is_err(), "not numbers");
    }

    #[test]
    fn pe_choices_are_the_powers_of_two_in_range() {
        assert_eq!(pe_choices((8, 64)), [8, 16, 32, 64]);
        assert_eq!(pe_choices((9, 31)), [16]);
        assert!(pe_choices((33, 63)).is_empty());
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let opts = SweepOptions::default();
        let pes = pe_choices(opts.pe_range);
        for s in 0..64u64 {
            let seed = plan::unit_seed(opts.master_seed, s);
            let a = sample_point(seed, &opts, &pes);
            let b = sample_point(seed, &opts, &pes);
            assert_eq!(a, b, "same seed must redraw the same point");
            assert!(a.m >= opts.m_range.0 && a.m <= opts.m_range.1);
            assert!(pes.contains(&a.n_pe));
            assert!(BUS_CHOICES.contains(&a.input_bus_bytes));
            assert!(INPUT_BUF_CHOICES.contains(&a.input_buf_bytes));
        }
        // Distinct seeds explore the space (not a constant draw).
        let pts: Vec<DesignPoint> = (0..16)
            .map(|s| sample_point(plan::unit_seed(42, s), &opts, &pes))
            .collect();
        assert!(pts.iter().any(|p| p != &pts[0]), "sampler never varied");
    }

    #[test]
    fn sweep_units_group_by_network_and_share_sample_seeds() {
        let opts = SweepOptions {
            networks: vec!["MobileNet".into(), "VGG16".into()],
            samples: 3,
            ..SweepOptions::default()
        };
        let units = SweepPlan::new(opts).units().expect("units");
        assert_eq!(units.len(), 6);
        assert!(units[0].key.starts_with("MobileNet/s000"));
        assert!(units[3].key.starts_with("VGG16/s000"));
        // Sample i draws the same seed on every network.
        assert_eq!(units[0].seed, units[3].seed);
        assert_ne!(units[0].seed, units[1].seed);
        assert_eq!(units[4].index, 4);
    }

    #[test]
    fn sweep_units_reject_bad_inputs() {
        let unknown = SweepOptions {
            networks: vec!["NotANet".into()],
            ..SweepOptions::default()
        };
        assert!(SweepPlan::new(unknown).units().is_err());
        let no_pe = SweepOptions {
            pe_range: (33, 63),
            ..SweepOptions::default()
        };
        assert!(SweepPlan::new(no_pe).units().is_err());
        let no_samples = SweepOptions {
            samples: 0,
            ..SweepOptions::default()
        };
        assert!(SweepPlan::new(no_samples).units().is_err());
    }

    #[test]
    fn sweep_records_round_trip_through_jsonl() {
        let rec = SweepRecord {
            key: "MobileNet/s001-00000000deadbeef-n2".into(),
            network: "MobileNet".into(),
            sample: 1,
            seed: 0xdead_beef,
            point: DesignPoint::table2(),
            input_seeds: 2,
            cycles: 123456.0,
            dram_mb: 12.5,
            energy_mj: 3.25,
            area_mm2: 7.5,
        };
        let line = rec.to_json_line();
        assert!(line.contains("\"schema\": \"escalate-sweep/v1\""));
        assert_eq!(SweepRecord::from_json_line(&line), Some(rec));
        assert_eq!(SweepRecord::from_json_line("{\"key\": \"torn"), None);
        let wrong_schema = line.replace("escalate-sweep/v1", "escalate-other/v9");
        assert_eq!(SweepRecord::from_json_line(&wrong_schema), None);
    }

    #[test]
    fn pareto_keeps_exactly_the_undominated_points() {
        let pts = [
            (10.0, 5.0, 2.0), // frontier (fastest)
            (20.0, 1.0, 3.0), // frontier (lowest energy)
            (15.0, 6.0, 2.5), // dominated by #0
            (10.0, 5.0, 2.0), // duplicate of #0: neither strictly dominates
            (25.0, 2.0, 1.0), // frontier (smallest)
        ];
        assert_eq!(pareto_indices(&pts), [0, 1, 3, 4]);
        assert!(pareto_indices(&[]).is_empty());
        assert_eq!(pareto_indices(&[(1.0, 1.0, 1.0)]), [0]);
    }
}
