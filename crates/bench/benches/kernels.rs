//! Criterion micro-benchmarks for the computational kernels of the
//! reproduction: kernel decomposition, ternarization, the bit-gather
//! network, dilution, concentration, and the two forward-pass orders.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use escalate_core::decompose;
use escalate_core::quant::{threshold_for_sparsity, TernaryCoeffs};
use escalate_core::reorg::{forward_eq2, forward_eq3};
use escalate_models::{synth, LayerShape};
use escalate_sparse::{
    dilute, gather_bits, gather_bits_butterfly, ConcentrationBuffer, DilutionInput,
};
use escalate_tensor::Tensor;

fn bench_decompose(c: &mut Criterion) {
    let mut g = c.benchmark_group("decompose");
    for &(ch, k) in &[(64usize, 64usize), (256, 256)] {
        let layer = LayerShape::conv("b", ch, k, 8, 8, 3, 1, 1);
        let w = synth::weights(&layer, 6, 0.05, 1);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{ch}x{k}x3x3")),
            &w,
            |b, w| b.iter(|| decompose(black_box(w), 6).expect("decomposition succeeds")),
        );
    }
    g.finish();
}

fn bench_ternarize(c: &mut Criterion) {
    let coeffs = Tensor::from_fn(&[256, 256, 6], |i| {
        ((i[0] * 7 + i[1] * 3 + i[2]) as f32 * 0.37).sin()
    });
    c.bench_function("ternarize_256x256x6", |b| {
        b.iter(|| TernaryCoeffs::ternarize(black_box(&coeffs), 0.05).expect("valid threshold"))
    });
    c.bench_function("threshold_search_256x256x6", |b| {
        b.iter(|| threshold_for_sparsity(black_box(&coeffs), 0.95))
    });
}

fn bench_bitgather(c: &mut Criterion) {
    let data = 0x0123_4567_89AB_CDEFu64;
    let mask = 0xA5A5_5A5A_F00F_0FF0u64;
    let mut g = c.benchmark_group("bitgather");
    g.bench_function("functional", |b| {
        b.iter(|| gather_bits(black_box(data), black_box(mask)))
    });
    g.bench_function("butterfly_model", |b| {
        b.iter(|| gather_bits_butterfly(black_box(data), black_box(mask)))
    });
    g.finish();
}

fn bench_dilution(c: &mut Criterion) {
    let act_values: Vec<f32> = (0..32).map(|i| i as f32 + 1.0).collect();
    let act_map = 0x5555_5555_5555_5555u64;
    let coef_signs: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
    let coef_map = 0x1111_1111_1111_1111u64;
    c.bench_function("dilute_64wide", |b| {
        b.iter(|| {
            dilute(black_box(&DilutionInput {
                act_values: &act_values,
                act_map,
                coef_signs: &coef_signs,
                coef_map,
                width: 64,
            }))
        })
    });
}

fn bench_concentration(c: &mut Criterion) {
    let slots: Vec<Option<f32>> = (0..1024)
        .map(|i| if i % 7 < 2 { Some(i as f32) } else { None })
        .collect();
    c.bench_function("concentration_1k_slots", |b| {
        b.iter(|| {
            let mut buf = ConcentrationBuffer::new(16, 4, 1);
            buf.push_slots(black_box(&slots));
            buf.drain_sum()
        })
    });
}

fn bench_forward_orders(c: &mut Criterion) {
    let layer = LayerShape::conv("b", 32, 32, 16, 16, 3, 1, 1);
    let w = synth::weights(&layer, 6, 0.05, 1);
    let d = decompose(&w, 6).expect("decomposition succeeds");
    let input = synth::activations(&layer, 0.5, 2);
    let mut g = c.benchmark_group("forward");
    g.bench_function("eq2_order", |b| {
        b.iter(|| forward_eq2(black_box(&d), black_box(&input), 1, 1))
    });
    g.bench_function("eq3_order", |b| {
        b.iter(|| forward_eq3(black_box(&d), black_box(&input), 1, 1))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_decompose,
    bench_ternarize,
    bench_bitgather,
    bench_dilution,
    bench_concentration,
    bench_forward_orders
);
criterion_main!(benches);
