//! Criterion microbenchmark for the Dilution-Concentration position walk:
//! the scalar reference (`position_cost_scalar`) against the word-parallel
//! `PositionKernel`, uncached and memoized, on a dense-activation /
//! sparse-coefficient MobileNet-shaped layer (the regime the ESCALATE
//! paper optimizes: ~95% coefficient sparsity meeting mostly-nonzero
//! activations). `scripts/tier1.sh` runs this in criterion test mode
//! (`-- --test`) so the bench executes in CI; `cargo bench --bench
//! position_kernel` measures it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use escalate_sim::ca::{position_cost_scalar, CaScratch, PositionKernel};
use escalate_sim::SimConfig;

/// Input channels of the benchmarked layer (a mid-network MobileNet
/// pointwise shape: multi-word masks).
const C: usize = 256;
const M: usize = 6;
/// Positions per walk — matches the sampled engine's per-channel walk
/// length so one iteration is one realistic channel visit.
const POSITIONS: usize = 48;

/// Deterministic splitmix64 — mask material without RNG dependencies.
fn splitmix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A `C`-channel mask with roughly `keep_per_mille`/1000 bits set.
fn mask(seed: &mut u64, keep_per_mille: u64) -> Vec<u64> {
    let words = C.div_ceil(64);
    (0..words)
        .map(|_| {
            let mut w = 0u64;
            for b in 0..64 {
                if splitmix(seed) % 1000 < keep_per_mille {
                    w |= 1 << b;
                }
            }
            w
        })
        .collect()
}

struct WalkInput {
    coef: Vec<Vec<u64>>,
    acts: Vec<Vec<u64>>,
}

fn walk_input() -> WalkInput {
    let mut seed = 0x5eed_c0de_u64;
    // ~95% sparse coefficients, ~90% dense activations.
    let coef: Vec<Vec<u64>> = (0..M).map(|_| mask(&mut seed, 50)).collect();
    let acts: Vec<Vec<u64>> = (0..POSITIONS).map(|_| mask(&mut seed, 900)).collect();
    WalkInput { coef, acts }
}

fn bench_position_walk(c: &mut Criterion) {
    let input = walk_input();
    let refs: Vec<&[u64]> = input.coef.iter().map(Vec::as_slice).collect();
    let cfg = SimConfig::default();

    // The three paths must agree before we time them — a benchmark of a
    // wrong kernel is worse than no benchmark.
    {
        let mut scratch = CaScratch::new(&cfg);
        let mut kernel = PositionKernel::new(&cfg);
        kernel.bind(C, refs.iter().copied());
        for act in &input.acts {
            let scalar = position_cost_scalar(&cfg, C, act, &refs, &mut scratch);
            assert_eq!(kernel.cost_uncached(act), scalar);
            assert_eq!(kernel.cost(act), scalar);
        }
    }

    let mut g = c.benchmark_group("position_walk");
    g.sample_size(30);

    let mut scratch = CaScratch::new(&cfg);
    g.bench_function("scalar", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for act in &input.acts {
                total +=
                    position_cost_scalar(&cfg, C, black_box(act), &refs, &mut scratch).ca_cycles;
            }
            total
        })
    });

    let mut kernel = PositionKernel::new(&cfg);
    g.bench_function("word_parallel", |b| {
        b.iter(|| {
            kernel.bind(C, refs.iter().copied());
            let mut total = 0u64;
            for act in &input.acts {
                total += kernel.cost_uncached(black_box(act)).ca_cycles;
            }
            total
        })
    });

    // The memoized walk re-binds per iteration like run_positions does per
    // channel, so this measures realistic cold-memo behavior on distinct
    // masks plus one warm repeat of the walk (trace-driven runs revisit
    // identical masks constantly).
    g.bench_function("word_parallel_memo", |b| {
        b.iter(|| {
            kernel.bind(C, refs.iter().copied());
            let mut total = 0u64;
            for _ in 0..2 {
                for act in &input.acts {
                    total += kernel.cost(black_box(act)).ca_cycles;
                }
            }
            total
        })
    });

    g.finish();
}

criterion_group!(benches, bench_position_walk);
criterion_main!(benches);
