//! Criterion microbenchmark for the Dilution-Concentration position walk:
//! the scalar reference (`position_cost_scalar`) against the word-parallel
//! `PositionKernel`, one position at a time and batched (`cost_batch`), on
//! a dense-activation / sparse-coefficient MobileNet-shaped layer (the
//! regime the ESCALATE paper optimizes: ~95% coefficient sparsity meeting
//! mostly-nonzero activations). `scripts/tier1.sh` runs this in criterion
//! test mode (`-- --test`) so the bench executes in CI; `cargo bench
//! --bench position_kernel` measures it (add `--features escalate-sim/simd`
//! for the `std::arch` dispatch).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use escalate_sim::ca::{position_cost_scalar, CaScratch, PositionKernel, MAX_BATCH};
use escalate_sim::SimConfig;

/// Input channels of the benchmarked layer (a mid-network MobileNet
/// pointwise shape: multi-word masks).
const C: usize = 256;
const M: usize = 6;
/// Positions per walk — matches the sampled engine's per-channel walk
/// length so one iteration is one realistic channel visit.
const POSITIONS: usize = 48;

/// Deterministic splitmix64 — mask material without RNG dependencies.
fn splitmix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A `C`-channel mask with roughly `keep_per_mille`/1000 bits set.
fn mask(seed: &mut u64, keep_per_mille: u64) -> Vec<u64> {
    let words = C.div_ceil(64);
    (0..words)
        .map(|_| {
            let mut w = 0u64;
            for b in 0..64 {
                if splitmix(seed) % 1000 < keep_per_mille {
                    w |= 1 << b;
                }
            }
            w
        })
        .collect()
}

struct WalkInput {
    coef: Vec<Vec<u64>>,
    acts: Vec<Vec<u64>>,
    /// The same positions packed `MAX_BATCH` masks at a time for
    /// `cost_batch`.
    acts_flat: Vec<u64>,
}

fn walk_input() -> WalkInput {
    let mut seed = 0x5eed_c0de_u64;
    // ~95% sparse coefficients, ~90% dense activations.
    let coef: Vec<Vec<u64>> = (0..M).map(|_| mask(&mut seed, 50)).collect();
    let acts: Vec<Vec<u64>> = (0..POSITIONS).map(|_| mask(&mut seed, 900)).collect();
    let acts_flat: Vec<u64> = acts.iter().flatten().copied().collect();
    WalkInput {
        coef,
        acts,
        acts_flat,
    }
}

fn bench_position_walk(c: &mut Criterion) {
    let input = walk_input();
    let refs: Vec<&[u64]> = input.coef.iter().map(Vec::as_slice).collect();
    let cfg = SimConfig::default();
    let words = C.div_ceil(64);

    // Every timed path must agree before we time it — a benchmark of a
    // wrong kernel is worse than no benchmark.
    {
        let mut scratch = CaScratch::new(&cfg);
        let mut kernel = PositionKernel::new(&cfg);
        kernel.bind(C, refs.iter().copied());
        let mut batched = vec![Default::default(); MAX_BATCH];
        for (p, act) in input.acts.iter().enumerate() {
            let scalar = position_cost_scalar(&cfg, C, act, &refs, &mut scratch);
            assert_eq!(kernel.cost(act), scalar);
            let (chunk, off) = (p / MAX_BATCH, p % MAX_BATCH);
            let n = MAX_BATCH.min(POSITIONS - chunk * MAX_BATCH);
            kernel.cost_batch(
                &input.acts_flat[chunk * MAX_BATCH * words..(chunk * MAX_BATCH + n) * words],
                n,
                &mut batched,
            );
            assert_eq!(batched[off], scalar);
        }
    }

    let mut g = c.benchmark_group("position_walk");
    g.sample_size(30);

    let mut scratch = CaScratch::new(&cfg);
    g.bench_function("scalar", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for act in &input.acts {
                total +=
                    position_cost_scalar(&cfg, C, black_box(act), &refs, &mut scratch).ca_cycles;
            }
            total
        })
    });

    // One position at a time through the kernel, re-binding per iteration
    // like run_positions does per channel.
    let mut kernel = PositionKernel::new(&cfg);
    g.bench_function("word_parallel", |b| {
        b.iter(|| {
            kernel.bind(C, refs.iter().copied());
            let mut total = 0u64;
            for act in &input.acts {
                total += kernel.cost(black_box(act)).ca_cycles;
            }
            total
        })
    });

    // The production walk: MAX_BATCH positions per pass over the bound
    // coefficient words.
    let mut costs = vec![Default::default(); MAX_BATCH];
    g.bench_function("batched", |b| {
        b.iter(|| {
            kernel.bind(C, refs.iter().copied());
            let mut total = 0u64;
            let mut p = 0usize;
            while p < POSITIONS {
                let n = MAX_BATCH.min(POSITIONS - p);
                kernel.cost_batch(
                    black_box(&input.acts_flat[p * words..(p + n) * words]),
                    n,
                    &mut costs,
                );
                for cost in &costs[..n] {
                    total += cost.ca_cycles;
                }
                p += n;
            }
            total
        })
    });

    g.finish();
}

criterion_group!(benches, bench_position_walk);
criterion_main!(benches);
