//! Criterion benchmarks for the cycle-level simulators: one ESCALATE
//! layer simulation, one baseline model sweep, and the whole-model
//! compression pipeline on the smallest network.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use escalate_baselines::{Accelerator, BaselineWorkload, Eyeriss, Scnn, SparTen};
use escalate_core::pipeline::CompressionConfig;
use escalate_core::quant::TernaryCoeffs;
use escalate_models::{LayerShape, ModelProfile};
use escalate_sim::workload::CoefMasks;
use escalate_sim::{simulate_layer, LayerWorkload, SimConfig, WorkloadMode};
use escalate_tensor::Tensor;

fn escalate_layer_workload() -> LayerWorkload {
    let coeffs = Tensor::from_fn(&[128, 128, 6], |i| {
        let h = (i[0] * 7919 + i[1] * 104729 + i[2] * 1299709) % 1000;
        if h < 950 {
            0.0
        } else if h % 2 == 0 {
            1.0
        } else {
            -1.0
        }
    });
    let t = TernaryCoeffs::ternarize(&coeffs, 0.0).expect("valid threshold");
    LayerWorkload {
        name: "bench".into(),
        shape: LayerShape::conv("bench", 128, 128, 16, 16, 3, 1, 1),
        out_channels: 128,
        mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
        act_sparsity: 0.5,
        out_sparsity: 0.5,
        weight_bytes: 10_000,
    }
}

fn bench_escalate_layer(c: &mut Criterion) {
    let lw = escalate_layer_workload();
    let cfg = SimConfig::default();
    c.bench_function("sim_escalate_layer_128x128", |b| {
        b.iter(|| simulate_layer(black_box(&lw), &cfg, 0))
    });
}

fn bench_baselines(c: &mut Criterion) {
    let profile = ModelProfile::for_model("ResNet18").expect("known model");
    let w = BaselineWorkload::for_profile(&profile);
    let mut g = c.benchmark_group("baseline_models");
    g.bench_function("eyeriss_resnet18", |b| b.iter(|| Eyeriss::default().simulate(black_box(&w), 0)));
    g.bench_function("scnn_resnet18", |b| b.iter(|| Scnn::default().simulate(black_box(&w), 0)));
    g.bench_function("sparten_resnet18", |b| b.iter(|| SparTen::default().simulate(black_box(&w), 0)));
    g.finish();
}

fn bench_compression_pipeline(c: &mut Criterion) {
    let profile = ModelProfile::for_model("MobileNet").expect("known model");
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("compress_mobilenet", |b| {
        b.iter(|| escalate_core::compress_model(black_box(&profile), &CompressionConfig::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_escalate_layer, bench_baselines, bench_compression_pipeline);
criterion_main!(benches);
