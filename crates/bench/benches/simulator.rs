//! Criterion benchmarks for the cycle-level simulators: one ESCALATE
//! layer simulation, one baseline model sweep, and the whole-model
//! compression pipeline on the smallest network.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use escalate_baselines::{BaselineWorkload, Eyeriss, LayerModel, Scnn, SparTen};
use escalate_core::pipeline::CompressionConfig;
use escalate_core::quant::TernaryCoeffs;
use escalate_models::{LayerShape, ModelProfile};
use escalate_sim::workload::CoefMasks;
use escalate_sim::{simulate_layer, LayerWorkload, SimConfig, WorkloadMode};
use escalate_tensor::Tensor;

fn escalate_layer_workload() -> LayerWorkload {
    let coeffs = Tensor::from_fn(&[128, 128, 6], |i| {
        let h = (i[0] * 7919 + i[1] * 104729 + i[2] * 1299709) % 1000;
        if h < 950 {
            0.0
        } else if h % 2 == 0 {
            1.0
        } else {
            -1.0
        }
    });
    let t = TernaryCoeffs::ternarize(&coeffs, 0.0).expect("valid threshold");
    LayerWorkload {
        name: "bench".into(),
        shape: LayerShape::conv("bench", 128, 128, 16, 16, 3, 1, 1),
        out_channels: 128,
        mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
        act_sparsity: 0.5,
        out_sparsity: 0.5,
        weight_bytes: 10_000,
    }
}

fn bench_escalate_layer(c: &mut Criterion) {
    let lw = escalate_layer_workload();
    let cfg = SimConfig::default();
    c.bench_function("sim_escalate_layer_128x128", |b| {
        b.iter(|| simulate_layer(black_box(&lw), &cfg, 0))
    });
}

fn bench_baselines(c: &mut Criterion) {
    let profile = ModelProfile::for_model("ResNet18").expect("known model");
    let w = BaselineWorkload::for_profile(&profile);
    let mut g = c.benchmark_group("baseline_models");
    g.bench_function("eyeriss_resnet18", |b| {
        b.iter(|| Eyeriss::default().simulate(black_box(&w), 0))
    });
    g.bench_function("scnn_resnet18", |b| {
        b.iter(|| Scnn::default().simulate(black_box(&w), 0))
    });
    g.bench_function("sparten_resnet18", |b| {
        b.iter(|| SparTen::default().simulate(black_box(&w), 0))
    });
    g.finish();
}

fn bench_compression_pipeline(c: &mut Criterion) {
    let profile = ModelProfile::for_model("MobileNet").expect("known model");
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("compress_mobilenet", |b| {
        b.iter(|| escalate_core::compress_model(black_box(&profile), &CompressionConfig::default()))
    });
    g.finish();
}

/// The full four-accelerator MobileNet grid, sequential vs the thread
/// pool — the criterion view of what `bench_sim` records in
/// `BENCH_sim.json`. The pool is built at full width first so the
/// sequential case cannot pin it to one thread.
fn bench_model_grid(c: &mut Criterion) {
    escalate_core::par::configure_threads(0);
    let profile = ModelProfile::for_model("MobileNet").expect("known model");
    // Warm the artifact cache so samples measure simulation only.
    escalate_bench::run_model(&profile, &SimConfig::default(), 1).expect("warm-up");
    let mut g = c.benchmark_group("model_grid");
    g.sample_size(10);
    let seq = SimConfig {
        threads: 1,
        ..SimConfig::default()
    };
    g.bench_function("mobilenet_grid_seq_2seeds", |b| {
        b.iter(|| escalate_bench::run_model(black_box(&profile), &seq, 2))
    });
    let par = SimConfig::default();
    g.bench_function("mobilenet_grid_par_2seeds", |b| {
        b.iter(|| escalate_bench::run_model(black_box(&profile), &par, 2))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_escalate_layer,
    bench_baselines,
    bench_compression_pipeline,
    bench_model_grid
);
criterion_main!(benches);
