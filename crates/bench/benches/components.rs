//! Criterion benchmarks for the hardware component models added on top of
//! the throughput engine: the cycle-stepped slice, the mask pipeline, the
//! H-tree arbitration network, and the GEMM convolution path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use escalate_sim::htree::HTree;
use escalate_sim::slice::{run_slice, PositionInput};
use escalate_sim::SimConfig;
use escalate_sparse::maskpipe::{MaskPipeline, PositionMaps};
use escalate_tensor::im2col::conv2d_gemm;
use escalate_tensor::{conv::conv2d, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_slice(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let positions: Vec<PositionInput> = (0..16)
        .map(|_| {
            let mut act = vec![0u64; 2];
            let mut coefs = vec![vec![0u64; 2]; 6];
            for i in 0..128 {
                if rng.gen_bool(0.5) {
                    act[i / 64] |= 1 << (i % 64);
                }
                for cm in coefs.iter_mut() {
                    if rng.gen_bool(0.1) {
                        cm[i / 64] |= 1 << (i % 64);
                    }
                }
            }
            PositionInput {
                act_mask: act,
                coef_masks: coefs,
                c: 128,
            }
        })
        .collect();
    let cfg = SimConfig::default();
    c.bench_function("slice_cycle_stepped_16pos", |b| {
        b.iter(|| run_slice(&cfg, 6, 9, black_box(&positions)))
    });
}

fn bench_maskpipe(c: &mut Criterion) {
    let maps = PositionMaps {
        act_map: vec![0xA5A5_5A5A_F00F_0FF0, 0x1234_5678_9ABC_DEF0],
        coef_map: vec![0x0FF0_F00F_5A5A_A5A5, 0xFFFF_0000_FFFF_0000],
        width: 128,
    };
    c.bench_function("maskpipe_position_128", |b| {
        b.iter(|| {
            let mut pipe = MaskPipeline::new();
            pipe.position_windows(black_box(&maps), 16)
        })
    });
}

fn bench_htree(c: &mut Criterion) {
    let mut tree = HTree::new(32);
    let reqs: Vec<Option<u64>> = (0..32).map(|i| Some((i % 5) as u64)).collect();
    c.bench_function("htree_round_32", |b| {
        b.iter(|| tree.round(black_box(&reqs)))
    });
}

fn bench_gemm_vs_direct(c: &mut Criterion) {
    let input = Tensor::from_fn(&[32, 16, 16], |i| {
        ((i[0] * 7 + i[1] * 3 + i[2]) % 9) as f32 * 0.1
    });
    let weight = Tensor::from_fn(&[32, 32, 3, 3], |i| {
        ((i[0] + i[1] + i[2] * i[3]) % 7) as f32 * 0.1
    });
    let mut g = c.benchmark_group("conv_paths");
    g.bench_function("direct", |b| {
        b.iter(|| conv2d(black_box(&input), black_box(&weight), 1, 1))
    });
    g.bench_function("im2col_gemm", |b| {
        b.iter(|| conv2d_gemm(black_box(&input), black_box(&weight), 1, 1))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_slice,
    bench_maskpipe,
    bench_htree,
    bench_gemm_vs_direct
);
criterion_main!(benches);
