//! Integration tests for the run-plan layer driving a *real* sweep:
//! the JSONL stream must resume to exactly the cold run's bytes, and the
//! records must be independent of the host thread count.

use escalate_bench::plan::{execute, JsonlSink};
use escalate_bench::sweep::{SweepOptions, SweepPlan, SweepRecord};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("escalate_bench_plan_tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

fn small_sweep(threads: usize) -> SweepOptions {
    SweepOptions {
        networks: vec!["MobileNet".into()],
        samples: 2,
        input_seeds: 1,
        threads,
        ..SweepOptions::default()
    }
}

#[test]
fn real_sweep_resumes_to_the_cold_run_bytes() {
    let cold_path = tmp("cold.jsonl");
    let resumed_path = tmp("resumed.jsonl");
    std::fs::remove_file(&cold_path).ok();
    std::fs::remove_file(&resumed_path).ok();

    let plan = SweepPlan::new(small_sweep(0));

    let mut sink = JsonlSink::open(&cold_path).expect("open cold");
    let s = execute(&plan, &mut sink).expect("cold sweep");
    assert_eq!((s.ran, s.skipped), (2, 0));
    drop(sink);
    let cold_bytes = std::fs::read(&cold_path).expect("cold bytes");
    let cold_text = String::from_utf8(cold_bytes.clone()).expect("utf8");
    assert_eq!(cold_text.lines().count(), 2, "one record per sample");
    for line in cold_text.lines() {
        let rec = SweepRecord::from_json_line(line).expect("parseable record");
        assert_eq!(rec.network, "MobileNet");
        assert!(rec.cycles > 0.0 && rec.energy_mj > 0.0 && rec.area_mm2 > 0.0);
    }

    // "Interrupt" after the first record, then resume into a new file.
    let first_line = format!("{}\n", cold_text.lines().next().expect("first line"));
    std::fs::write(&resumed_path, first_line).expect("truncate");
    let mut sink = JsonlSink::open(&resumed_path).expect("open resumed");
    let s = execute(&plan, &mut sink).expect("resumed sweep");
    assert_eq!(
        (s.ran, s.skipped),
        (1, 1),
        "resume must run exactly the missing sample"
    );
    drop(sink);
    assert_eq!(
        std::fs::read(&resumed_path).expect("resumed bytes"),
        cold_bytes,
        "a resumed sweep must reproduce the cold run byte-for-byte"
    );

    std::fs::remove_file(&cold_path).ok();
    std::fs::remove_file(&resumed_path).ok();
}

#[test]
fn sweep_records_are_identical_at_any_thread_count() {
    let par_path = tmp("par.jsonl");
    let seq_path = tmp("seq.jsonl");
    std::fs::remove_file(&par_path).ok();
    std::fs::remove_file(&seq_path).ok();

    let mut sink = JsonlSink::open(&par_path).expect("open");
    execute(&SweepPlan::new(small_sweep(0)), &mut sink).expect("auto-thread sweep");
    drop(sink);
    let mut sink = JsonlSink::open(&seq_path).expect("open");
    execute(&SweepPlan::new(small_sweep(1)), &mut sink).expect("sequential sweep");
    drop(sink);

    // The `threads` knob configures the host, not the modeled hardware:
    // every simulated quantity must match bit-for-bit. (The raw files
    // differ only if a field encoded the knob itself — compare records.)
    let records = |p: &PathBuf| -> Vec<SweepRecord> {
        std::fs::read_to_string(p)
            .expect("read")
            .lines()
            .map(|l| SweepRecord::from_json_line(l).expect("parseable"))
            .collect()
    };
    let (par, seq) = (records(&par_path), records(&seq_path));
    assert_eq!(par.len(), 2);
    assert_eq!(par, seq, "thread count leaked into the simulated results");

    std::fs::remove_file(&par_path).ok();
    std::fs::remove_file(&seq_path).ok();
}
