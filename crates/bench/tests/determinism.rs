//! Determinism contract of the parallel harness: every parallel stage
//! (layers within a model, seeds within a run, accelerators within the
//! grid) must produce bit-identical results to a forced single-thread run,
//! because each work item seeds its RNG independently and all fan-outs are
//! order-preserving.

use escalate_bench::{compress_cached, run_accelerator, run_model};
use escalate_core::pipeline::CompressionConfig;
use escalate_energy::BufferCaps;
use escalate_models::ModelProfile;
use escalate_sim::{simulate_model, Accelerator, Escalate, SimConfig, Workload};

/// Builds the global pool at its auto width before any `threads == 1` run
/// can pin it to one thread (the first configuration wins per process).
fn wide_pool() {
    escalate_core::par::configure_threads(0);
}

#[test]
fn parallel_simulate_model_is_bit_identical() {
    wide_pool();
    let profile = ModelProfile::for_model("MobileNet").expect("known model");
    let artifacts = compress_cached(&profile, &CompressionConfig::default()).expect("compression");
    let workload = Workload::from_artifacts(&profile.name, &artifacts, &profile);
    let sequential = SimConfig {
        threads: 1,
        ..SimConfig::default()
    };
    let parallel = SimConfig::default();
    for seed in [0u64, 7, 41] {
        let seq = simulate_model(&workload, &sequential, seed);
        let par = simulate_model(&workload, &parallel, seed);
        assert_eq!(seq, par, "seed {seed}: parallel layer fan-out diverged");
    }
}

#[test]
fn parallel_run_model_matches_sequential() {
    wide_pool();
    let profile = ModelProfile::for_model("MobileNet").expect("known model");
    let seeds = 3;
    let seq = run_model(
        &profile,
        &SimConfig {
            threads: 1,
            ..SimConfig::default()
        },
        seeds,
    )
    .expect("sequential grid");
    let par = run_model(&profile, &SimConfig::default(), seeds).expect("parallel grid");
    for (s, p) in [
        (&seq.escalate, &par.escalate),
        (&seq.eyeriss, &par.eyeriss),
        (&seq.scnn, &par.scnn),
        (&seq.sparten, &par.sparten),
    ] {
        assert_eq!(
            s.first_seed_stats, p.first_seed_stats,
            "{}: per-layer stats diverged",
            s.name
        );
        assert_eq!(s.cycles, p.cycles, "{}: mean cycles diverged", s.name);
        assert_eq!(
            s.dram_bytes, p.dram_bytes,
            "{}: mean DRAM bytes diverged",
            s.name
        );
        assert_eq!(s.energy_pj, p.energy_pj, "{}: mean energy diverged", s.name);
    }
}

#[test]
fn generic_runner_is_bit_identical_across_thread_counts() {
    wide_pool();
    let profile = ModelProfile::for_model("MobileNet").expect("known model");
    let artifacts = compress_cached(&profile, &CompressionConfig::default()).expect("compression");
    let workload = Workload::from_artifacts(&profile.name, &artifacts, &profile);
    let cfg = SimConfig::default();
    let caps = BufferCaps::from_config(&cfg);
    let escalate = Escalate::new(&workload, &cfg);
    // Drive ESCALATE through the generic `&dyn Accelerator` path (the same
    // one `run_model` uses for baselines): the seed fan-out and the
    // per-seed layer fan-out must both be order-preserving.
    let acc: &dyn Accelerator = &escalate;
    let seq = run_accelerator(acc, &caps, 3, 1);
    let par = run_accelerator(acc, &caps, 3, 0);
    assert_eq!(
        seq.first_seed_stats, par.first_seed_stats,
        "generic runner: per-layer stats diverged"
    );
    assert_eq!(
        seq.cycles, par.cycles,
        "generic runner: mean cycles diverged"
    );
    assert_eq!(
        seq.dram_bytes, par.dram_bytes,
        "generic runner: mean DRAM bytes diverged"
    );
    assert_eq!(
        seq.energy_pj, par.energy_pj,
        "generic runner: mean energy diverged"
    );
    // The trait's provided fold must agree with what the runner averaged
    // in the single-seed case: one seed means mean == that seed's totals.
    let one = run_accelerator(acc, &caps, 1, 1);
    let direct = acc.simulate(0, 1);
    assert_eq!(
        one.first_seed_stats, direct,
        "provided Accelerator::simulate diverged from runner"
    );
}
