//! Artifact-cache eviction under a deliberately tiny capacity.
//!
//! The sweep warns when the distinct `(network, M)` working set exceeds
//! `ESCALATE_CACHE_CAP` (the message itself is unit-tested next to
//! `cache_thrash_warning`); this test pins the behaviour the warning
//! reports on: an undersized cache really evicts, really recompresses,
//! and the recompressed artifacts are identical to the first pass.
//!
//! This lives in its own integration-test binary so the process-global
//! artifact cache starts empty and no parallel test races the capacity
//! changes.

use escalate_bench::{
    artifact_cache_evictions, artifact_cache_len, compress_cached, set_artifact_cache_capacity,
    DEFAULT_CACHE_CAP,
};
use escalate_core::pipeline::CompressionConfig;
use escalate_models::ModelProfile;

#[test]
fn tiny_cache_cap_evicts_and_recompresses_identically() {
    let profile = ModelProfile::for_model("MobileNetV2").expect("known model");
    // Avoid M=6 (the default used by other suites) so this binary's
    // working set is self-contained even if the harness changes.
    let cfg_m4 = CompressionConfig {
        m: 4,
        ..CompressionConfig::default()
    };
    let cfg_m5 = CompressionConfig {
        m: 5,
        ..CompressionConfig::default()
    };

    // An empty cache has nothing to evict when re-bounded to one slot.
    assert_eq!(set_artifact_cache_capacity(1), 0);

    let first = compress_cached(&profile, &cfg_m4).expect("m=4 compresses");
    assert_eq!(artifact_cache_len(), 1);
    let before = artifact_cache_evictions();

    // A second distinct (network, M) artifact displaces the first...
    compress_cached(&profile, &cfg_m5).expect("m=5 compresses");
    assert_eq!(artifact_cache_len(), 1);
    assert!(
        artifact_cache_evictions() > before,
        "inserting past a 1-entry cap must evict"
    );

    // ...so asking for the first again recompresses from scratch — and
    // eviction is invisible in the results: the artifacts match the
    // originals exactly.
    let again = compress_cached(&profile, &cfg_m4).expect("m=4 recompresses");
    assert!(
        artifact_cache_evictions() >= before + 2,
        "round-tripping two artifacts through one slot evicts both"
    );
    assert!(
        !std::sync::Arc::ptr_eq(&first, &again),
        "the evicted entry cannot be served back by pointer"
    );
    assert_eq!(first.len(), again.len());
    for (a, b) in first.iter().zip(again.iter()) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    // Growing the bound back never evicts.
    assert_eq!(set_artifact_cache_capacity(DEFAULT_CACHE_CAP), 0);
}
