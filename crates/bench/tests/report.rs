//! Integration tests for the experiment registry and the `report`
//! runner: golden round-trips against the committed `results/` corpus,
//! JSON schema shape, and the seed-averaging fixes.

use escalate_bench::experiments::{self, ExpContext, ReportOptions, REPORT_SCHEMA};
use escalate_bench::{geomean, run_accelerator};
use escalate_energy::BufferCaps;
use escalate_sim::{Accelerator, LayerStats};

/// Runs `report --check` for `names` against the committed corpus.
fn check(names: &[&str]) -> (bool, String) {
    let opts = ReportOptions {
        check: true,
        names: names.iter().map(ToString::to_string).collect(),
        ..ReportOptions::default()
    };
    let mut buf = Vec::new();
    let clean = experiments::run_report(&opts, &mut buf).expect("report --check runs");
    (clean, String::from_utf8(buf).expect("utf8"))
}

#[test]
fn report_check_round_trips_table4_against_the_committed_corpus() {
    let (clean, out) = check(&["table4"]);
    assert!(clean, "table4 drifted from results/table4.txt:\n{out}");
}

#[test]
fn report_check_round_trips_fast_ablations_against_the_committed_corpus() {
    let (clean, out) = check(&["encoding_sweep", "psum_ablation"]);
    assert!(clean, "golden drift:\n{out}");
}

// The debug profile pays minutes per full-grid experiment, so the heavy
// round-trips are exercised by `scripts/tier1.sh`, which drives the
// release `report --check` over the same corpus; run them here explicitly
// with `cargo test -- --ignored` when needed.
#[test]
#[ignore = "minutes under the dev profile; tier1.sh checks these via the release report binary"]
fn report_check_round_trips_fig8_and_table1() {
    let (clean, out) = check(&["table1", "fig8"]);
    assert!(clean, "golden drift:\n{out}");
}

// Pins `report --all --check` — the whole golden corpus through the
// run-plan executor — in one invocation, exactly what the CI gate runs
// via the release binary.
#[test]
#[ignore = "many minutes under the dev profile; tier1.sh runs the release `report --all --check`"]
fn report_all_check_round_trips_the_full_corpus() {
    let opts = ReportOptions {
        all: true,
        check: true,
        ..ReportOptions::default()
    };
    let mut buf = Vec::new();
    let clean = experiments::run_report(&opts, &mut buf).expect("report --all --check runs");
    let out = String::from_utf8(buf).expect("utf8");
    assert!(clean, "golden drift:\n{out}");
    assert!(
        out.contains("PASS: 18 experiment(s) checked"),
        "expected the 18-experiment epilogue:\n{out}"
    );
}

#[test]
fn report_update_then_check_round_trips_in_a_fresh_dir() {
    let dir = std::env::temp_dir().join("escalate_report_roundtrip");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let results_dir = Some(dir.clone());
    let names = vec!["table4".to_string()];
    let update = ReportOptions {
        update: true,
        names: names.clone(),
        results_dir: results_dir.clone(),
        ..ReportOptions::default()
    };
    let mut buf = Vec::new();
    assert!(experiments::run_report(&update, &mut buf).expect("update"));
    let checkopts = ReportOptions {
        check: true,
        names,
        results_dir,
        ..ReportOptions::default()
    };
    let mut buf = Vec::new();
    let clean = experiments::run_report(&checkopts, &mut buf).expect("check");
    assert!(clean, "{}", String::from_utf8_lossy(&buf));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_json_is_a_schema_tagged_document() {
    let table = experiments::find("table4")
        .expect("registered")
        .run(&ExpContext::default())
        .expect("runs");
    let json = table.render_json();
    let schema_tag = format!("\"schema\": \"{REPORT_SCHEMA}\"");
    for needle in [
        schema_tag.as_str(),
        "\"experiment\": \"table4\"",
        "\"paper_anchor\":",
        "\"records\":",
        "\"text\":",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
    // Balanced JSON at the top level: same machinery escalate-obs
    // validates, cheap structural sanity here.
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced braces"
    );
}

/// A deterministic accelerator whose per-seed stats differ, for pinning
/// the seed-averaging semantics without a real simulation.
struct FakeAccel;

impl Accelerator for FakeAccel {
    fn name(&self) -> &str {
        "fake"
    }

    fn num_layers(&self) -> usize {
        1
    }

    fn simulate_layer(&self, _index: usize, seed: u64) -> LayerStats {
        // Seed 0 is sparser (cheaper) than seed 1: every cost scales with
        // the seed so the per-seed energy breakdowns genuinely differ.
        let scale = seed + 1;
        let mut l = LayerStats {
            name: "l0".into(),
            ..LayerStats::default()
        };
        l.cycles = 1000 * scale;
        l.mac_ops = 500 * scale;
        l.mac_cycle_slots = 6000 * scale;
        l.dram.weights = 64 * scale;
        l.dram.ifm = 128 * scale;
        l.dram.ofm = 32 * scale;
        l.sram.input_buf = 200 * scale;
        l.sram.coef_buf = 100 * scale;
        l.sram.psum_buf = 50 * scale;
        l.sram.output_buf = 25 * scale;
        l.sram.act_buf = 75 * scale;
        l
    }
}

#[test]
fn average_runs_averages_the_energy_breakdown_not_just_totals() {
    let caps = BufferCaps::baseline(64 * 1024);
    let two = run_accelerator(&FakeAccel, &caps, 2, 1);
    // The mean breakdown must sum to the mean total energy; with the old
    // first-seed breakdown it summed to seed 0's (smaller) total instead.
    let bd_total = two.energy.total_pj();
    assert!(
        (bd_total - two.energy_pj).abs() <= 1e-6 * two.energy_pj.abs(),
        "breakdown sums to {bd_total} but the seed-mean energy is {}",
        two.energy_pj
    );
    // And it must genuinely be an average: strictly between the two
    // per-seed totals (seed 1 costs twice seed 0 by construction).
    let one = run_accelerator(&FakeAccel, &caps, 1, 1);
    assert!(two.energy_pj > one.energy_pj, "mean must exceed seed 0");
    assert!(two.energy.dram_pj > one.energy.dram_pj);
    // `first_seed_stats` stays the first seed (layer-wise figures rely on it).
    assert_eq!(two.first_seed_stats, one.first_seed_stats);
}

#[test]
fn run_accelerator_clamps_zero_seeds_to_one_with_a_warning() {
    let caps = BufferCaps::baseline(64 * 1024);
    // The warning lands on stderr (uncapturable here without a harness);
    // what must hold is the documented clamp: seeds=0 behaves as 1 seed.
    let zero = run_accelerator(&FakeAccel, &caps, 0, 1);
    let one = run_accelerator(&FakeAccel, &caps, 1, 1);
    assert_eq!(zero.first_seed_stats, one.first_seed_stats);
    assert!((zero.cycles - one.cycles).abs() < f64::EPSILON);
    assert!((zero.energy_pj - one.energy_pj).abs() < f64::EPSILON);
}

#[test]
fn geomean_pins_edge_cases_and_matches_the_historical_fold() {
    assert!((geomean(&[]) - 1.0).abs() < f64::EPSILON, "empty product");
    let x = 3.7f64;
    assert!((geomean(&[x]) - x).abs() <= 1e-12 * x, "single element");
    let vals = [2.0, 8.0];
    assert!((geomean(&vals) - 4.0).abs() < 1e-12);
    // Same fold the per-binary closures used, bit for bit.
    let vals: [f64; 4] = [1.37, 2.91, 0.44, 12.5];
    let old = (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp();
    assert_eq!(geomean(&vals).to_bits(), old.to_bits());
}
