//! Eyeriss: the dense row-stationary baseline.
//!
//! Eyeriss (Chen et al., ISSCC/JSSC 2016) maps filter rows to PE-array
//! rows and output rows to array diagonals; weights stay resident in PE
//! register files while activations slide past. It does not *skip* zero
//! computation (zeros are only clock-gated for energy), so its cycle count
//! is the dense MAC count over the achievable array utilization — which
//! is what makes it the normalization baseline of Figures 8 and 11.

use crate::common::{BaselineConfig, BaselineWorkload};
use crate::LayerModel;
use escalate_sim::stats::{DramTraffic, LayerStats, SramTraffic};

/// The Eyeriss dense accelerator model.
#[derive(Debug, Clone, Default)]
pub struct Eyeriss {
    /// Shared baseline resources.
    pub cfg: BaselineConfig,
}

impl Eyeriss {
    /// Creates the model with the given resources.
    pub fn new(cfg: BaselineConfig) -> Self {
        Eyeriss { cfg }
    }

    /// Row-stationary spatial utilization for a layer on a square array.
    ///
    /// Kernel rows `R` tile the array's row dimension (a 7-row kernel on a
    /// 32-row array fits 4 replicas, wasting 4 rows). Small output maps do
    /// not starve the columns: the row-stationary mapper folds additional
    /// (channel, filter) tiles into idle columns (what TimeLoop's mapping
    /// search finds), leaving a residual ~0.85 scheduling efficiency, with
    /// real starvation only when the whole layer has too little work.
    fn utilization(&self, w: &BaselineWorkload) -> f64 {
        let side = (self.cfg.multipliers as f64).sqrt() as usize; // 32 for 1024
        let r = w.layer.r.max(1);
        let row_util = if r >= side {
            0.95
        } else {
            let replicas = side / r;
            (replicas * r) as f64 / side as f64
        };
        let work = (w.layer.k * w.layer.out_x() * w.layer.out_y()) as f64;
        let fill = (work / (4.0 * self.cfg.multipliers as f64)).min(1.0);
        (row_util * 0.85 * fill).clamp(1e-3, 1.0)
    }
}

impl LayerModel for Eyeriss {
    fn name(&self) -> &'static str {
        "Eyeriss"
    }

    fn simulate_layer(&self, w: &BaselineWorkload) -> LayerStats {
        let macs = w.dense_macs();
        let util = self.utilization(w);
        let cycles = ((macs as f64) / (self.cfg.multipliers as f64 * util)).ceil() as u64;

        // Dense 8-bit storage everywhere; the row-stationary schedule reads
        // the IFM from DRAM once (plus halos, ignored) and weights once,
        // but re-streams the IFM when the filter working set exceeds the
        // global buffer.
        let weight_bytes = w.layer.weight_params() as u64;
        let ifm_bytes = w.layer.input_size() as u64;
        let ofm_bytes = w.output_elems();
        let ifm_loads = if weight_bytes <= self.cfg.glb_bytes as u64 {
            1
        } else {
            weight_bytes.div_ceil(self.cfg.glb_bytes as u64).min(8)
        };

        let dram_cycles = ((weight_bytes + ifm_bytes + ofm_bytes) as f64
            / self.cfg.dram_bytes_per_cycle)
            .ceil() as u64;
        let cycles = cycles.max(dram_cycles);
        LayerStats {
            name: w.layer.name.clone(),
            cycles: cycles.max(1),
            mac_ops: macs,
            ca_adds: 0,
            gather_passes: 0,
            mac_idle_cycles: 0,
            mac_cycle_slots: cycles.max(1) * self.cfg.multipliers as u64,
            dram: DramTraffic {
                weights: weight_bytes,
                ifm: ifm_bytes * ifm_loads,
                ofm: ofm_bytes,
            },
            sram: SramTraffic {
                // Row-stationary: each activation is read from the GLB once
                // per filter-row reuse window.
                input_buf: ifm_bytes * w.layer.r as u64,
                coef_buf: weight_bytes * 2,
                psum_buf: 4 * macs,
                output_buf: ofm_bytes,
                act_buf: macs,
            },
            fallback: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escalate_models::{LayerShape, ModelProfile};

    fn wl(layer: LayerShape) -> BaselineWorkload {
        BaselineWorkload {
            layer,
            weight_sparsity: 0.9,
            act_sparsity: 0.5,
            out_sparsity: 0.5,
        }
    }

    #[test]
    fn cycles_ignore_sparsity() {
        let e = Eyeriss::default();
        let a = wl(LayerShape::conv("a", 64, 64, 32, 32, 3, 1, 1));
        let mut b = a.clone();
        b.weight_sparsity = 0.0;
        b.act_sparsity = 0.0;
        let sa = e.simulate(&[a], 0);
        let sb = e.simulate(&[b], 0);
        assert_eq!(sa.total_cycles(), sb.total_cycles());
    }

    #[test]
    fn utilization_suffers_on_tiny_maps() {
        let e = Eyeriss::default();
        let big = wl(LayerShape::conv("a", 64, 64, 32, 32, 3, 1, 1));
        let tiny = wl(LayerShape::conv("b", 64, 64, 2, 2, 3, 1, 1));
        assert!(e.utilization(&tiny) < e.utilization(&big));
    }

    #[test]
    fn cycles_at_least_mac_bound() {
        let e = Eyeriss::default();
        let w = wl(LayerShape::conv("a", 128, 128, 16, 16, 3, 1, 1));
        let s = e.simulate(std::slice::from_ref(&w), 0);
        assert!(s.total_cycles() >= w.dense_macs() / 1024);
    }

    #[test]
    fn full_model_runs() {
        let p = ModelProfile::for_model("VGG16").unwrap();
        let w = BaselineWorkload::for_profile(&p);
        let s = Eyeriss::default().simulate(&w, 0);
        assert_eq!(s.layers.len(), w.len());
        assert!(s.total_cycles() > 0);
        // Dense weights dominate VGG16 DRAM traffic.
        let d = s.total_dram();
        assert!(d.weights > d.ifm);
    }
}
