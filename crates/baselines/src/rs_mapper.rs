//! A TimeLoop-lite mapping search for the row-stationary dataflow.
//!
//! The default [`crate::Eyeriss`] model uses a closed-form utilization
//! (kernel-row fit × scheduling efficiency), which is what its Figure 8
//! numbers are calibrated on. This module implements the search that
//! TimeLoop actually performs: enumerate the legal spatial mappings of a
//! layer onto the PE array — how many kernel-row strips fit the array
//! rows, how output rows and filter/channel tiles fold across the columns
//! — and report the best mapping's cycle count. It exists to *validate*
//! the closed form (the search never beats it by much, see the tests and
//! the `rs_mapping` ablation binary), not to replace it.

use crate::common::BaselineWorkload;

/// One candidate spatial mapping of a layer on an `rows × cols` PE array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mapping {
    /// Kernel-row strips stacked along the array's row dimension.
    pub row_replicas: usize,
    /// Output rows mapped across array columns per pass.
    pub cols_for_output: usize,
    /// Filter tiles folded into the remaining columns.
    pub cols_for_filters: usize,
    /// Cycles this mapping needs for the layer.
    pub cycles: u64,
    /// Spatial utilization of the array in `[0, 1]`.
    pub utilization: f64,
}

/// Searches the row-stationary mapping space of a layer on an
/// `array_rows × array_cols` PE array (1 MAC per PE) and returns the
/// fastest mapping.
///
/// The mapping space enumerated:
/// - `row_replicas ∈ 1..=⌊rows/R⌋`: independent kernel-row strips stacked
///   along the array rows, each strip handling one `(filter, channel)`
///   pair at a time;
/// - a split of the columns between output-row parallelism
///   (`cols_for_output`) and additional `(filter, channel)` folding
///   (`cols_for_filters`).
///
/// One strip (a column of `R` PEs, each holding one kernel row of `S`
/// weights) produces one output row of one `(k, c)` pair in `S·Y'`
/// cycles. A mapping's cycle count is therefore
/// `⌈X'/cols_for_output⌉ · ⌈K·C/(replicas·cols_for_filters)⌉ · S·Y'`,
/// which can never beat the `MACs/(rows·cols)` bound — the fragmentation
/// (ceil) terms and unused rows are exactly what the closed-form model's
/// efficiency factor summarizes.
///
/// # Panics
///
/// Panics if the array has no rows or columns.
pub fn search(w: &BaselineWorkload, array_rows: usize, array_cols: usize) -> Mapping {
    assert!(array_rows > 0 && array_cols > 0, "array must be non-empty");
    let r = w.layer.r.max(1).min(array_rows);
    let s = w.layer.s.max(1);
    let out_rows = w.layer.out_x().max(1);
    let out_cols = w.layer.out_y().max(1);
    let kc = (w.layer.k.max(1) * w.layer.c.max(1)).max(1);
    let macs = w.dense_macs().max(1);

    let max_replicas = (array_rows / r).max(1);
    let mut best = Mapping {
        row_replicas: 1,
        cols_for_output: array_cols,
        cols_for_filters: 1,
        cycles: u64::MAX,
        utilization: 0.0,
    };

    for row_replicas in 1..=max_replicas {
        for cols_for_output in 1..=array_cols.min(out_rows) {
            let cols_for_filters = array_cols / cols_for_output;
            if cols_for_filters == 0 {
                continue;
            }
            let parallel_kc = (row_replicas * cols_for_filters).min(kc);
            let out_row_passes = out_rows.div_ceil(cols_for_output) as u64;
            let kc_passes = kc.div_ceil(parallel_kc) as u64;
            let cycles = out_row_passes * kc_passes * (s * out_cols) as u64;
            let utilization =
                macs as f64 / (cycles.max(1) as f64 * (array_rows * array_cols) as f64);
            if cycles < best.cycles {
                best = Mapping {
                    row_replicas,
                    cols_for_output,
                    cols_for_filters,
                    cycles,
                    utilization: utilization.min(1.0),
                };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use escalate_models::LayerShape;

    fn wl(layer: LayerShape) -> BaselineWorkload {
        BaselineWorkload {
            layer,
            weight_sparsity: 0.9,
            act_sparsity: 0.5,
            out_sparsity: 0.5,
        }
    }

    #[test]
    fn search_never_beats_the_mac_bound() {
        for layer in [
            LayerShape::conv("a", 64, 64, 32, 32, 3, 1, 1),
            LayerShape::conv("b", 512, 512, 2, 2, 3, 1, 1),
            LayerShape::conv("c", 3, 64, 224, 224, 7, 2, 3),
            LayerShape::pwconv("d", 256, 256, 14, 14),
        ] {
            let w = wl(layer);
            let m = search(&w, 32, 32);
            assert!(
                m.cycles >= w.dense_macs() / 1024,
                "{}: {} < MAC bound",
                w.layer.name,
                m.cycles
            );
            assert!(m.utilization <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn big_layers_reach_high_utilization() {
        let w = wl(LayerShape::conv("big", 256, 256, 32, 32, 3, 1, 1));
        let m = search(&w, 32, 32);
        assert!(m.utilization > 0.6, "got {:.2}", m.utilization);
    }

    #[test]
    fn searched_mapping_brackets_the_closed_form() {
        // The calibrated closed-form utilization must sit inside the
        // mapper's achievable range on the evaluated layer shapes: the
        // search (ideal, fragmentation-only) is at least as good, but not
        // wildly better than closed-form × scheduling efficiency.
        use crate::eyeriss::Eyeriss;
        use crate::LayerModel;
        let eye = Eyeriss::default();
        for layer in [
            LayerShape::conv("a", 64, 64, 32, 32, 3, 1, 1),
            LayerShape::conv("b", 128, 256, 16, 16, 3, 1, 1),
            LayerShape::conv("c", 512, 512, 4, 4, 3, 1, 1),
        ] {
            let w = wl(layer);
            let searched = search(&w, 32, 32).cycles;
            let closed = eye.simulate(std::slice::from_ref(&w), 0).layers[0].cycles;
            let ratio = closed as f64 / searched as f64;
            assert!(
                (0.8..4.0).contains(&ratio),
                "{}: closed {} vs searched {} (ratio {ratio:.2})",
                w.layer.name,
                closed,
                searched
            );
        }
    }

    #[test]
    fn tiny_kernel_rows_replicate() {
        // A 1-row kernel lets 32 strips stack: the mapper must use them.
        let w = wl(LayerShape::pwconv("pw", 128, 128, 28, 28));
        let m = search(&w, 32, 32);
        assert!(m.row_replicas > 8, "got {}", m.row_replicas);
    }

    #[test]
    fn degenerate_output_maps_still_map() {
        let w = wl(LayerShape::conv("t", 64, 64, 2, 2, 3, 1, 1));
        let m = search(&w, 32, 32);
        assert!(m.cycles > 0);
        assert!(m.cols_for_output <= 32);
    }
}
