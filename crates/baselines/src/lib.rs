#![warn(missing_docs)]

//! Baseline accelerator simulators: Eyeriss, SCNN, and SparTen.
//!
//! The paper compares ESCALATE against one dense accelerator (Eyeriss,
//! simulated with TimeLoop) and two two-sided sparse accelerators (SCNN
//! via DNNsim, SparTen via the authors' own simulator). Here all three are
//! re-implemented from their papers' dataflows as cycle-level analytical
//! models with the configuration discipline of Table 2: every design gets
//! the same 1024 8-bit multipliers and proportionally scaled buffers, and
//! all consume the *pruned baseline checkpoints'* sparsity (Table 1's
//! baseline rows), not ESCALATE's decomposed model.
//!
//! All three emit the same [`escalate_sim::LayerStats`] records, so the
//! energy model and the figure harnesses treat every accelerator
//! uniformly.

pub mod common;
pub mod eyeriss;
pub mod rs_mapper;
pub mod scnn;
pub mod sparten;

pub use common::{BaselineConfig, BaselineWorkload};
pub use escalate_sim::Accelerator;
pub use eyeriss::Eyeriss;
pub use scnn::Scnn;
pub use sparten::SparTen;

use escalate_sim::{LayerStats, ModelStats};

/// A baseline accelerator's per-layer cost model.
///
/// Implementors supply only [`LayerModel::simulate_layer`]; the fold into
/// [`ModelStats`] happens once, in the provided
/// [`Accelerator::simulate`], by binding the model to a workload with
/// [`BaselineSim`]. The trait is object-safe so harnesses can iterate
/// over a heterogeneous accelerator list, and `Sync` so they can fan
/// input seeds out across threads against a shared instance.
pub trait LayerModel: Sync {
    /// Accelerator display name.
    fn name(&self) -> &'static str;

    /// Simulates one layer of a baseline workload.
    fn simulate_layer(&self, w: &BaselineWorkload) -> LayerStats;

    /// Convenience: binds the model to `workload` and runs the unified
    /// [`Accelerator::simulate`] fold. The baseline models are
    /// deterministic, so `seed` is accepted for signature uniformity and
    /// ignored.
    fn simulate(&self, workload: &[BaselineWorkload], _seed: u64) -> ModelStats {
        BaselineSim::new(self, workload).simulate(0, 1)
    }
}

/// A [`LayerModel`] bound to a concrete workload, implementing the
/// unified [`Accelerator`] trait from `escalate-sim` — the adapter that
/// lets the generic seed-averaging harness in `escalate-bench` drive
/// baselines and ESCALATE identically.
pub struct BaselineSim<'a, M: ?Sized + LayerModel> {
    model: &'a M,
    workload: &'a [BaselineWorkload],
}

impl<'a, M: ?Sized + LayerModel> BaselineSim<'a, M> {
    /// Binds a layer model to a workload.
    pub fn new(model: &'a M, workload: &'a [BaselineWorkload]) -> Self {
        BaselineSim { model, workload }
    }
}

impl<M: ?Sized + LayerModel> Accelerator for BaselineSim<'_, M> {
    fn name(&self) -> &str {
        self.model.name()
    }

    fn num_layers(&self) -> usize {
        self.workload.len()
    }

    fn simulate_layer(&self, index: usize, _seed: u64) -> LayerStats {
        self.model.simulate_layer(&self.workload[index])
    }
}
