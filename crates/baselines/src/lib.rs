#![warn(missing_docs)]

//! Baseline accelerator simulators: Eyeriss, SCNN, and SparTen.
//!
//! The paper compares ESCALATE against one dense accelerator (Eyeriss,
//! simulated with TimeLoop) and two two-sided sparse accelerators (SCNN
//! via DNNsim, SparTen via the authors' own simulator). Here all three are
//! re-implemented from their papers' dataflows as cycle-level analytical
//! models with the configuration discipline of Table 2: every design gets
//! the same 1024 8-bit multipliers and proportionally scaled buffers, and
//! all consume the *pruned baseline checkpoints'* sparsity (Table 1's
//! baseline rows), not ESCALATE's decomposed model.
//!
//! All three emit the same [`escalate_sim::LayerStats`] records, so the
//! energy model and the figure harnesses treat every accelerator
//! uniformly.

pub mod common;
pub mod eyeriss;
pub mod rs_mapper;
pub mod scnn;
pub mod sparten;

pub use common::{BaselineConfig, BaselineWorkload};
pub use eyeriss::Eyeriss;
pub use scnn::Scnn;
pub use sparten::SparTen;

use escalate_sim::ModelStats;

/// A baseline accelerator that can simulate a whole model.
///
/// The trait is object-safe so harnesses can iterate over a heterogeneous
/// accelerator list. The `Sync` bound lets those harnesses fan input
/// seeds out across threads against a shared accelerator instance.
pub trait Accelerator: Sync {
    /// Accelerator display name.
    fn name(&self) -> &'static str;

    /// Simulates all layers of a model workload.
    fn simulate(&self, workload: &[BaselineWorkload], seed: u64) -> ModelStats;
}
