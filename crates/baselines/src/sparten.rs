//! SparTen: the bitmask inner-join sparse baseline.
//!
//! SparTen (Gondimalla et al., MICRO 2019) stores both operands as
//! SparseMap-style bitmasks and computes the inner join of a filter
//! vector and an activation vector per compute unit: AND the masks,
//! prefix-sum to locate operand offsets, and multiply only the matches.
//! It walks input channels innermost, which gives it the channel-parallel
//! advantage on late (deep, narrow) layers that Figure 11 shows, at the
//! cost of load imbalance between greedily-dispatched chunks and a
//! synchronization barrier per output tile that forces IFM re-fetches.

use crate::common::{BaselineConfig, BaselineWorkload};
use crate::LayerModel;
use escalate_sim::stats::{DramTraffic, LayerStats, SramTraffic};

/// The SparTen sparse accelerator model.
#[derive(Debug, Clone)]
pub struct SparTen {
    /// Shared baseline resources.
    pub cfg: BaselineConfig,
    /// Compute units: each joins one 32-wide chunk pair per cycle and
    /// feeds a small multiplier backend.
    pub n_units: usize,
    /// Multipliers behind each unit's prefix-sum front end; matches
    /// serialize over them.
    pub mults_per_unit: usize,
    /// Mean slowdown from load imbalance across greedily dispatched
    /// chunks: at pruned-checkpoint sparsity the per-chunk match counts
    /// have high variance, so the greedy balancer's residual grows past
    /// the SparTen paper's dense-ish 1.15 estimate.
    pub imbalance_factor: f64,
}

impl Default for SparTen {
    fn default() -> Self {
        // 1024 multipliers as 256 units × 4 multipliers: the 32-wide mask
        // AND + prefix-sum + priority-encode front end of one unit is
        // area-equivalent to several multipliers, so the equal-multiplier
        // normalization of Table 2 cannot afford one front end per
        // multiplier.
        SparTen {
            cfg: BaselineConfig::default(),
            n_units: 256,
            mults_per_unit: 4,
            imbalance_factor: 1.3,
        }
    }
}

impl SparTen {
    /// Cycle count from the chunk-join structure.
    ///
    /// Each output element joins its `C·R·S` reduction positions in
    /// 32-wide mask chunks: one cycle ANDs the masks and prefix-sums the
    /// offsets, then the unit's multiplier serializes over the matches.
    /// A chunk therefore costs `max(1, matched)` cycles — the granularity
    /// floor that caps SparTen's gain at extreme sparsity, and the
    /// channel-first structure that starves it on shallow early layers
    /// (a 27-position join still burns a full chunk cycle).
    fn structural_cycles(&self, w: &BaselineWorkload) -> f64 {
        // The join vectors run along the channel dimension, one per kernel
        // offset: shallow layers leave the 32-wide chunks mostly empty
        // (the early-layer weakness of Figure 11), deep layers fill them.
        // Depthwise layers reduce over R·S only (no channel reduction).
        let depthwise = w.layer.kind == escalate_models::LayerKind::DwConv;
        let (join, chunks_per_out) = if depthwise {
            let join = w.layer.r * w.layer.s;
            (join, join.div_ceil(32) as f64)
        } else {
            (
                w.layer.c * w.layer.r * w.layer.s,
                (w.layer.r * w.layer.s * w.layer.c.div_ceil(32)) as f64,
            )
        };
        let products_per_out = join as f64 * (1.0 - w.weight_sparsity) * (1.0 - w.act_sparsity);
        // One cycle ANDs a chunk; its matches serialize over the unit's
        // multiplier backend.
        let matched_per_chunk = products_per_out / chunks_per_out;
        let cyc_per_out =
            chunks_per_out * (matched_per_chunk / self.mults_per_unit as f64).max(1.0);
        let outputs = if depthwise {
            (w.layer.c * w.layer.out_x() * w.layer.out_y()) as f64
        } else {
            (w.layer.k * w.layer.out_x() * w.layer.out_y()) as f64
        };
        outputs * cyc_per_out / self.n_units as f64
    }
}

impl LayerModel for SparTen {
    fn name(&self) -> &'static str {
        "SparTen"
    }

    fn simulate_layer(&self, w: &BaselineWorkload) -> LayerStats {
        let products = w.effectual_products();
        let cycles = (self.structural_cycles(w) * self.imbalance_factor).ceil() as u64;

        // Both operands as bitmask + 8-bit nonzeros.
        let weight_bytes = w.weight_nnz() + (w.layer.weight_params() as u64).div_ceil(8);
        let ifm_once = w.act_nnz() + (w.layer.input_size() as u64).div_ceil(8);
        // Output-tile barrier: the IFM is re-fetched for every group of
        // filters whose partial sums fit the accumulator array.
        let filter_rounds = (w.layer.k as u64).div_ceil(64);
        let ifm_bytes = ifm_once * filter_rounds.max(1);
        let ofm_bytes = w.output_bytes_compressed();

        let dram_cycles = ((weight_bytes + ifm_bytes + ofm_bytes) as f64
            / self.cfg.dram_bytes_per_cycle)
            .ceil() as u64;
        let cycles = cycles.max(dram_cycles);
        LayerStats {
            name: w.layer.name.clone(),
            cycles: cycles.max(1),
            mac_ops: products,
            ca_adds: 0,
            // One AND + prefix-sum pass per 32-wide chunk join.
            gather_passes: ((w.layer.k * w.layer.out_x() * w.layer.out_y()) as u64)
                * ((w.layer.r * w.layer.s * w.layer.c.div_ceil(32)) as u64),
            mac_idle_cycles: 0,
            mac_cycle_slots: cycles.max(1) * self.cfg.multipliers as u64,
            dram: DramTraffic {
                weights: weight_bytes,
                ifm: ifm_bytes,
                ofm: ofm_bytes,
            },
            sram: SramTraffic {
                input_buf: ifm_bytes,
                coef_buf: weight_bytes * 2,
                psum_buf: 4 * products,
                output_buf: ofm_bytes,
                act_buf: products,
            },
            fallback: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eyeriss::Eyeriss;
    use crate::scnn::Scnn;
    use escalate_models::{LayerShape, ModelProfile};

    fn wl(layer: LayerShape, ws: f64, as_: f64) -> BaselineWorkload {
        BaselineWorkload {
            layer,
            weight_sparsity: ws,
            act_sparsity: as_,
            out_sparsity: as_,
        }
    }

    #[test]
    fn late_layers_favor_sparten_over_scnn() {
        // Deep channels, tiny spatial map: SparTen's channel-first join
        // stays busy; SCNN's spatial tiling starves.
        let w = wl(LayerShape::conv("late", 512, 512, 2, 2, 3, 1, 1), 0.98, 0.5);
        let sp = SparTen::default()
            .simulate(std::slice::from_ref(&w), 0)
            .total_cycles();
        let sc = Scnn::default()
            .simulate(std::slice::from_ref(&w), 0)
            .total_cycles();
        assert!(sp < sc, "SparTen {sp} should beat SCNN {sc} on late layers");
    }

    #[test]
    fn early_layers_favor_scnn_over_sparten() {
        // Shallow channels, big map, heavily pruned checkpoint: SCNN's
        // spatial tiles stay full while SparTen's channel chunks starve.
        let w = wl(
            LayerShape::conv("early", 64, 64, 32, 32, 3, 1, 1),
            0.986,
            0.35,
        );
        let sp = SparTen::default()
            .simulate(std::slice::from_ref(&w), 0)
            .total_cycles();
        let sc = Scnn::default()
            .simulate(std::slice::from_ref(&w), 0)
            .total_cycles();
        assert!(
            sc < sp,
            "SCNN {sc} should beat SparTen {sp} on early layers"
        );
    }

    #[test]
    fn sparten_beats_eyeriss_on_sparse_models() {
        let p = ModelProfile::for_model("ResNet18").unwrap();
        let w = BaselineWorkload::for_profile(&p);
        let sp = SparTen::default().simulate(&w, 0).total_cycles();
        let ey = Eyeriss::default().simulate(&w, 0).total_cycles();
        assert!(sp < ey);
    }

    #[test]
    fn filter_rounds_multiply_ifm_traffic() {
        let narrow = wl(LayerShape::conv("n", 64, 32, 16, 16, 3, 1, 1), 0.8, 0.5);
        let wide = wl(LayerShape::conv("w", 64, 512, 16, 16, 3, 1, 1), 0.8, 0.5);
        let sn = SparTen::default().simulate(&[narrow], 0).total_dram().ifm;
        let sw = SparTen::default().simulate(&[wide], 0).total_dram().ifm;
        assert!(
            sw >= 8 * sn,
            "16 filter rounds should refetch the IFM: {sw} vs {sn}"
        );
    }
}
