//! SCNN: the Cartesian-product sparse baseline.
//!
//! SCNN (Parashar et al., ISCA 2017) runs the PT-IS-CP-sparse dataflow:
//! each PE owns a spatial tile of the input, fetches vectors of nonzero
//! weights and activations, and multiplies them all-pairs in an `F×I`
//! multiplier array, scattering products through a crossbar into
//! accumulator banks. Compute thus scales with the *effectual products*,
//! but utilization collapses when the spatial tile per PE becomes too
//! small to fill the input vector (late, small-feature-map layers — the
//! clear early/late boundary of Figure 11) and crossbar bank conflicts
//! add a constant overhead factor.

use crate::common::{BaselineConfig, BaselineWorkload};
use crate::LayerModel;
use escalate_sim::stats::{DramTraffic, LayerStats, SramTraffic};

/// The SCNN sparse accelerator model.
#[derive(Debug, Clone)]
pub struct Scnn {
    /// Shared baseline resources.
    pub cfg: BaselineConfig,
    /// Number of PEs (each holds a `4×4` multiplier array).
    pub n_pe: usize,
    /// Mean slowdown from accumulator-bank conflicts (SCNN paper reports
    /// ~1.2×; DNNsim measures similar).
    pub conflict_factor: f64,
}

impl Default for Scnn {
    fn default() -> Self {
        // 1024 multipliers = 64 PEs × 4×4 arrays.
        Scnn {
            cfg: BaselineConfig::default(),
            n_pe: 64,
            conflict_factor: 1.2,
        }
    }
}

impl Scnn {
    /// Cycle count from the PT-IS-CP fetch structure.
    ///
    /// Each PE owns one of 64 spatial tiles and sweeps input channels; per
    /// channel and per filter group it fetches `F = 4` nonzero weights and
    /// `I = 4` nonzero activations and multiplies them all-pairs, so one
    /// (channel, group) iteration costs `⌈nw/4⌉ × ⌈na/4⌉` cycles. At the
    /// extreme sparsity of pruned checkpoints the vectors are mostly
    /// partial — the granularity floor (one cycle per fetch pair) is what
    /// keeps real SCNN far from the raw product-count speedup.
    fn structural_cycles(&self, w: &BaselineWorkload) -> f64 {
        // Filter groups sized by the accumulator-bank capacity. Depthwise
        // layers have exactly one kernel per channel, not K of them.
        let depthwise = w.layer.kind == escalate_models::LayerKind::DwConv;
        let kc = 64usize;
        let groups = if depthwise {
            1.0
        } else {
            w.layer.k.div_ceil(kc) as f64
        };
        let kc_eff = if depthwise {
            1.0
        } else {
            w.layer.k as f64 / groups
        };
        // Nonzero weights of one channel within one filter group.
        let nw = kc_eff * (w.layer.r * w.layer.s) as f64 * (1.0 - w.weight_sparsity);
        // Nonzero activations in one PE's spatial tile of one channel.
        let tile = ((w.layer.x * w.layer.y) as f64 / self.n_pe as f64).max(1.0);
        let na = tile * (1.0 - w.act_sparsity);
        // E[⌈x/4⌉] ≈ x/4 + 0.5, floored at one fetch cycle.
        let per_cg = (nw / 4.0 + 0.5).max(1.0) * (na / 4.0 + 0.5).max(1.0);
        w.layer.c as f64 * groups * per_cg
    }
}

impl LayerModel for Scnn {
    fn name(&self) -> &'static str {
        "SCNN"
    }

    fn simulate_layer(&self, w: &BaselineWorkload) -> LayerStats {
        // Depthwise layers break the Cartesian product (no cross-channel
        // reduction): only matching channels multiply, collapsing the F
        // vector — the SCNN paper does not support them natively; DNNsim
        // serializes them. Model as 2× lower multiplier efficiency.
        let dw_penalty = if w.layer.kind == escalate_models::LayerKind::DwConv {
            2.0
        } else {
            1.0
        };
        let products = w.effectual_products();
        let cycles = (self.structural_cycles(w) * self.conflict_factor * dw_penalty).ceil() as u64;

        // Weights: run-length encoded nonzeros (8-bit value + 4-bit step ≈
        // 1.5 bytes per nonzero). Activations: compressed, and SCNN's
        // large per-PE activation buffers hold the full working set, so
        // the IFM streams from DRAM once (input-stationary).
        let weight_bytes = (w.weight_nnz() as f64 * 1.5).ceil() as u64;
        let ifm_bytes = (w.act_nnz() as f64 * 1.5).ceil() as u64;
        let ofm_bytes = w.output_bytes_compressed();

        let dram_cycles = ((weight_bytes + ifm_bytes + ofm_bytes) as f64
            / self.cfg.dram_bytes_per_cycle)
            .ceil() as u64;
        let cycles = cycles.max(dram_cycles);
        LayerStats {
            name: w.layer.name.clone(),
            cycles: cycles.max(1),
            mac_ops: products,
            ca_adds: 0,
            gather_passes: 0,
            mac_idle_cycles: 0,
            mac_cycle_slots: cycles.max(1) * self.cfg.multipliers as u64,
            dram: DramTraffic {
                weights: weight_bytes,
                ifm: ifm_bytes,
                ofm: ofm_bytes,
            },
            sram: SramTraffic {
                input_buf: ifm_bytes * w.layer.r as u64 * w.layer.s as u64,
                coef_buf: weight_bytes * 2,
                // Crossbar scatter: every product traverses the 16→32
                // crossbar and read-modify-writes an accumulator bank —
                // SCNN's dominant on-chip cost.
                psum_buf: 8 * products,
                output_buf: ofm_bytes,
                act_buf: 2 * products,
            },
            fallback: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eyeriss::Eyeriss;
    use escalate_models::{LayerShape, ModelProfile};

    fn wl(layer: LayerShape, ws: f64, as_: f64) -> BaselineWorkload {
        BaselineWorkload {
            layer,
            weight_sparsity: ws,
            act_sparsity: as_,
            out_sparsity: as_,
        }
    }

    #[test]
    fn sparsity_speeds_up_scnn() {
        let s = Scnn::default();
        let dense = wl(LayerShape::conv("a", 64, 64, 32, 32, 3, 1, 1), 0.0, 0.0);
        let sparse = wl(LayerShape::conv("a", 64, 64, 32, 32, 3, 1, 1), 0.9, 0.5);
        let cd = s.simulate(&[dense], 0).total_cycles();
        let cs = s.simulate(&[sparse], 0).total_cycles();
        assert!(cs * 10 < cd, "90/50 sparsity should cut ~20x: {cs} vs {cd}");
    }

    #[test]
    fn scnn_beats_eyeriss_on_sparse_early_layers() {
        let w = wl(LayerShape::conv("a", 64, 64, 32, 32, 3, 1, 1), 0.9, 0.5);
        let scnn = Scnn::default()
            .simulate(std::slice::from_ref(&w), 0)
            .total_cycles();
        let eye = Eyeriss::default()
            .simulate(std::slice::from_ref(&w), 0)
            .total_cycles();
        assert!(scnn < eye);
    }

    #[test]
    fn small_maps_hurt_scnn() {
        let s = Scnn::default();
        let big = wl(LayerShape::conv("a", 512, 512, 32, 32, 3, 1, 1), 0.9, 0.5);
        let small = wl(LayerShape::conv("b", 512, 512, 2, 2, 3, 1, 1), 0.9, 0.5);
        // Cycles per product are much worse on the small map.
        let cb = s.simulate(std::slice::from_ref(&big), 0).total_cycles() as f64
            / big.effectual_products() as f64;
        let cs = s.simulate(std::slice::from_ref(&small), 0).total_cycles() as f64
            / small.effectual_products() as f64;
        assert!(cs > 5.0 * cb);
    }

    #[test]
    fn depthwise_layers_are_penalized() {
        let s = Scnn::default();
        let dw = wl(LayerShape::dwconv("dw", 256, 28, 28, 3, 1, 1), 0.7, 0.4);
        let conv = wl(LayerShape::conv("c", 16, 16, 28, 28, 3, 1, 1), 0.7, 0.4);
        // Same order of products; the depthwise one pays the penalty.
        let cd = s.simulate(std::slice::from_ref(&dw), 0).total_cycles() as f64
            / dw.effectual_products() as f64;
        let cc = s.simulate(std::slice::from_ref(&conv), 0).total_cycles() as f64
            / conv.effectual_products() as f64;
        assert!(cd > 2.0 * cc);
    }

    #[test]
    fn full_model_runs_with_low_ifm_traffic() {
        let p = ModelProfile::for_model("ResNet50").unwrap();
        let w = BaselineWorkload::for_profile(&p);
        let s = Scnn::default().simulate(&w, 0);
        let e = Eyeriss::default().simulate(&w, 0);
        // SCNN's input-stationary buffers keep IFM DRAM at or below
        // Eyeriss' (which also loads once here, but dense).
        assert!(s.total_dram().ifm <= e.total_dram().ifm);
    }
}
