//! Shared baseline configuration and workload construction.

use escalate_models::{LayerShape, ModelProfile};

/// Common resources all baseline accelerators are normalized to
/// (Table 2: "1024 8-bit multipliers, proportional scaling of on-chip
/// SRAM buffer").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineConfig {
    /// Number of 8-bit multipliers.
    pub multipliers: usize,
    /// Global on-chip buffer capacity in bytes (proportional scaling of
    /// the ~15 KB ESCALATE keeps per-block times 32 blocks ≈ 64 KB of
    /// activation-facing SRAM plus coefficient storage).
    pub glb_bytes: usize,
    /// Clock frequency in MHz (all designs compared at the same clock).
    pub frequency_mhz: f64,
    /// DRAM bandwidth in bytes per cycle (identical across designs).
    pub dram_bytes_per_cycle: f64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            multipliers: 1024,
            glb_bytes: 64 * 1024,
            frequency_mhz: 800.0,
            dram_bytes_per_cycle: 64.0,
        }
    }
}

/// One layer's workload as the baselines see it: the *pruned checkpoint's*
/// weight sparsity plus the same synthetic activation sparsity ESCALATE
/// receives.
#[derive(Debug, Clone)]
pub struct BaselineWorkload {
    /// Layer shape.
    pub layer: LayerShape,
    /// Weight sparsity of the pruned baseline checkpoint for this layer.
    pub weight_sparsity: f64,
    /// Input activation sparsity.
    pub act_sparsity: f64,
    /// Output (post-ReLU) sparsity, for compressed OFM write-back.
    pub out_sparsity: f64,
}

impl BaselineWorkload {
    /// Builds the per-layer workloads for a model profile.
    ///
    /// The first convolutional layer keeps the low pruning ratio the paper
    /// cites for first layers (1.2–1.6×, i.e. ~20% sparsity); other layers
    /// use the checkpoint-level sparsity from Table 1.
    pub fn for_profile(profile: &ModelProfile) -> Vec<BaselineWorkload> {
        let model = profile.model();
        let conv: Vec<&LayerShape> = model.conv_layers().collect();
        let n = conv.len();
        conv.iter()
            .enumerate()
            .map(|(i, l)| BaselineWorkload {
                layer: (*l).clone(),
                weight_sparsity: if i == 0 {
                    0.2
                } else {
                    profile.baseline_weight_sparsity
                },
                act_sparsity: profile.activation_sparsity(i, n),
                out_sparsity: profile.activation_sparsity((i + 1).min(n - 1), n),
            })
            .collect()
    }

    /// Dense MAC count of the layer.
    pub fn dense_macs(&self) -> u64 {
        self.layer.macs() as u64
    }

    /// Effectual products: pairs where both weight and activation are
    /// nonzero (the work two-sided sparse accelerators perform).
    pub fn effectual_products(&self) -> u64 {
        (self.dense_macs() as f64 * (1.0 - self.weight_sparsity) * (1.0 - self.act_sparsity)).ceil()
            as u64
    }

    /// Nonzero weights of the pruned checkpoint.
    pub fn weight_nnz(&self) -> u64 {
        (self.layer.weight_params() as f64 * (1.0 - self.weight_sparsity)).ceil() as u64
    }

    /// Nonzero input activations.
    pub fn act_nnz(&self) -> u64 {
        (self.layer.input_size() as f64 * (1.0 - self.act_sparsity)).ceil() as u64
    }

    /// Dense output size in elements.
    pub fn output_elems(&self) -> u64 {
        self.layer.output_size() as u64
    }

    /// Compressed OFM bytes (post-ReLU nonzeros plus a bit mask), used by
    /// the accelerators that store activations compressed.
    pub fn output_bytes_compressed(&self) -> u64 {
        (self.output_elems() as f64 * (1.0 - self.out_sparsity)).ceil() as u64
            + self.output_elems().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_cover_all_conv_layers() {
        let p = ModelProfile::for_model("ResNet18").unwrap();
        let w = BaselineWorkload::for_profile(&p);
        assert_eq!(w.len(), p.model().conv_layers().count());
        assert!(
            (w[0].weight_sparsity - 0.2).abs() < 1e-12,
            "first layer stays nearly dense"
        );
        assert!((w[3].weight_sparsity - p.baseline_weight_sparsity).abs() < 1e-12);
    }

    #[test]
    fn effectual_products_shrink_with_sparsity() {
        let p = ModelProfile::for_model("VGG16").unwrap();
        let w = &BaselineWorkload::for_profile(&p)[5];
        assert!(w.effectual_products() < w.dense_macs() / 10);
        assert!(w.effectual_products() > 0);
    }

    #[test]
    fn nnz_counts_are_consistent() {
        let p = ModelProfile::for_model("MobileNet").unwrap();
        for w in BaselineWorkload::for_profile(&p) {
            assert!(w.weight_nnz() <= w.layer.weight_params() as u64);
            assert!(w.act_nnz() <= w.layer.input_size() as u64);
        }
    }
}
