//! Cross-baseline coverage: behaviors every accelerator model must share
//! under the Table 2 normalization, plus the bandwidth-bound regime.

use escalate_baselines::{BaselineConfig, BaselineWorkload, Eyeriss, LayerModel, Scnn, SparTen};
use escalate_models::{LayerShape, ModelProfile};

fn wl(layer: LayerShape, ws: f64, sa: f64) -> BaselineWorkload {
    BaselineWorkload {
        layer,
        weight_sparsity: ws,
        act_sparsity: sa,
        out_sparsity: sa,
    }
}

fn accels() -> Vec<Box<dyn LayerModel>> {
    vec![
        Box::new(Eyeriss::default()),
        Box::new(Scnn::default()),
        Box::new(SparTen::default()),
    ]
}

#[test]
fn every_baseline_is_deterministic() {
    let p = ModelProfile::for_model("VGG16").unwrap();
    let w = BaselineWorkload::for_profile(&p);
    for acc in accels() {
        let a = acc.simulate(&w, 0).total_cycles();
        let b = acc.simulate(&w, 0).total_cycles();
        assert_eq!(a, b, "{}", acc.name());
    }
}

#[test]
fn every_baseline_respects_the_dram_bandwidth_bound() {
    // A layer with huge traffic but trivial compute (1×1 kernel, extreme
    // sparsity) must pace at the DRAM bound on every design.
    let layer = LayerShape::conv("io", 512, 8, 64, 64, 1, 1, 0);
    let w = wl(layer, 0.999, 0.0);
    let bw = BaselineConfig::default().dram_bytes_per_cycle;
    for acc in accels() {
        let s = acc.simulate(std::slice::from_ref(&w), 0);
        let dram_cycles = (s.total_dram().total() as f64 / bw).floor() as u64;
        assert!(
            s.total_cycles() >= dram_cycles,
            "{}: {} cycles < DRAM bound {}",
            acc.name(),
            s.total_cycles(),
            dram_cycles
        );
    }
}

#[test]
fn sparse_baselines_collapse_to_dense_speed_at_zero_sparsity() {
    // With nothing to skip, SCNN and SparTen must not be dramatically
    // faster than Eyeriss (their skipping hardware buys nothing).
    let layer = LayerShape::conv("dense", 128, 128, 28, 28, 3, 1, 1);
    let w = wl(layer, 0.0, 0.0);
    let eye = Eyeriss::default()
        .simulate(std::slice::from_ref(&w), 0)
        .total_cycles() as f64;
    for acc in [&Scnn::default() as &dyn LayerModel, &SparTen::default()] {
        let c = acc.simulate(std::slice::from_ref(&w), 0).total_cycles() as f64;
        let speedup = eye / c;
        assert!(
            (0.2..2.0).contains(&speedup),
            "{} at zero sparsity: {speedup:.2}x vs Eyeriss",
            acc.name()
        );
    }
}

#[test]
fn depthwise_layers_run_on_every_baseline() {
    let layer = LayerShape::dwconv("dw", 256, 28, 28, 3, 1, 1);
    let w = wl(layer, 0.7, 0.4);
    for acc in accels() {
        let s = acc.simulate(std::slice::from_ref(&w), 0);
        assert!(s.total_cycles() > 0, "{}", acc.name());
        assert!(s.total_dram().total() > 0, "{}", acc.name());
    }
}

#[test]
fn cycles_scale_with_model_size_on_every_baseline() {
    let small = ModelProfile::for_model("MobileNet").unwrap();
    let large = ModelProfile::for_model("ResNet50").unwrap();
    let ws = BaselineWorkload::for_profile(&small);
    let wlg = BaselineWorkload::for_profile(&large);
    for acc in accels() {
        let cs = acc.simulate(&ws, 0).total_cycles();
        let cl = acc.simulate(&wlg, 0).total_cycles();
        assert!(
            cl > cs,
            "{}: ResNet50 should outweigh MobileNet",
            acc.name()
        );
    }
}

#[test]
fn weight_traffic_orders_by_encoding() {
    // Same pruned model: Eyeriss stores dense 8-bit, SparTen mask+values,
    // SCNN run-length nonzeros — traffic must order accordingly at high
    // sparsity.
    let p = ModelProfile::for_model("ResNet18").unwrap();
    let w = BaselineWorkload::for_profile(&p);
    let eye = Eyeriss::default().simulate(&w, 0).total_dram().weights;
    let sp = SparTen::default().simulate(&w, 0).total_dram().weights;
    let sc = Scnn::default().simulate(&w, 0).total_dram().weights;
    assert!(eye > sp, "dense ({eye}) > bitmask ({sp})");
    assert!(sp > sc, "bitmask ({sp}) > RLE ({sc}) at 98.6% sparsity");
}
