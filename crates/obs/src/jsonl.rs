//! Append-only JSONL (one JSON object per line) support: a line-durable
//! file writer plus field scanners for reading records back.
//!
//! JSONL is the workspace's streaming/resume format (sibling of the
//! one-shot `escalate-run-manifest/v1` document): each record is a single
//! line, appends never rewrite earlier lines, and a consumer that crashed
//! mid-stream loses at most the line being written — everything before it
//! is still parseable. The dependency policy forbids external JSON
//! crates, so records are written through [`crate::JsonWriter`] and read
//! back with the targeted field scanners here ([`json_string_field`],
//! [`json_f64_field`], [`json_u64_field`]) instead of a full parser: the
//! only records this workspace scans are ones it wrote itself, with known
//! top-level field names.

use std::io::Write;
use std::path::Path;

/// An append-only JSONL file writer.
///
/// Every [`JsonlWriter::append`] writes one line and flushes it, so an
/// interrupted run leaves a prefix of complete records behind — the
/// property resume-aware sinks rely on.
#[derive(Debug)]
pub struct JsonlWriter {
    file: std::fs::File,
}

impl JsonlWriter {
    /// Opens `path` for appending, creating the file (and its parent
    /// directories) if missing. Existing records are never touched.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn append_to(path: &Path) -> std::io::Result<JsonlWriter> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlWriter { file })
    }

    /// Appends one record (a complete JSON object, no trailing newline)
    /// and flushes the line to the OS.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn append(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }
}

/// Reads the non-empty lines of a JSONL file; a missing file is an empty
/// stream (the cold-start case of a resumable sink), any other I/O
/// failure is an error.
///
/// # Errors
///
/// Propagates filesystem failures other than `NotFound`.
pub fn read_lines(path: &Path) -> std::io::Result<Vec<String>> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(str::to_string)
            .collect()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// Locates the value of a top-level `"key": …` member in one JSON line,
/// returning the byte offset of the value's first character.
///
/// The scan matches the quoted key literally, so a field name that also
/// appears inside a string *value* earlier in the line could be matched
/// instead — acceptable here because the scanners only read records this
/// workspace wrote, whose schemas put keys first and never embed them in
/// values.
fn value_start(line: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let skip = rest.len() - rest.trim_start().len();
    Some(at + skip)
}

/// Extracts a string field from one JSONL record, un-escaping the JSON
/// string syntax [`crate::JsonWriter`] emits. `None` when the field is
/// missing or not a string.
pub fn json_string_field(line: &str, key: &str) -> Option<String> {
    let start = value_start(line, key)?;
    let mut chars = line[start..].chars();
    if chars.next() != Some('"') {
        return None;
    }
    let mut out = String::new();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None // unterminated string: a truncated (interrupted) record
}

/// The raw token of a numeric/boolean field (everything up to the next
/// comma or closing brace).
fn scalar_token<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let start = value_start(line, key)?;
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    let token = rest[..end].trim();
    (!token.is_empty()).then_some(token)
}

/// Extracts a float field from one JSONL record (`null` — the encoding of
/// non-finite floats — and malformed numbers return `None`).
pub fn json_f64_field(line: &str, key: &str) -> Option<f64> {
    scalar_token(line, key)?.parse().ok()
}

/// Extracts an unsigned-integer field from one JSONL record.
pub fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    scalar_token(line, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_creates_parents_and_preserves_existing_lines() {
        let dir = std::env::temp_dir().join("escalate_obs_jsonl_test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("nested").join("records.jsonl");
        let mut w = JsonlWriter::append_to(&path).expect("open");
        w.append("{\"key\": \"a\"}").expect("append");
        drop(w);
        let mut w = JsonlWriter::append_to(&path).expect("reopen");
        w.append("{\"key\": \"b\"}").expect("append");
        drop(w);
        let lines = read_lines(&path).expect("read");
        assert_eq!(lines, ["{\"key\": \"a\"}", "{\"key\": \"b\"}"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let path = std::env::temp_dir().join("escalate_obs_jsonl_missing.jsonl");
        std::fs::remove_file(&path).ok();
        assert!(read_lines(&path).expect("missing is empty").is_empty());
    }

    #[test]
    fn field_scanners_round_trip_a_jsonwriter_record() {
        let mut w = crate::JsonWriter::new();
        w.begin_object();
        w.field_str("key", "net/s001 \"q\"\n\\");
        w.field_u64("sample", 7);
        w.field_f64("energy_mj", 1.25);
        w.field_f64("bad", f64::NAN);
        w.end_object();
        let line = w.finish();
        assert_eq!(
            json_string_field(&line, "key").as_deref(),
            Some("net/s001 \"q\"\n\\")
        );
        assert_eq!(json_u64_field(&line, "sample"), Some(7));
        assert_eq!(json_f64_field(&line, "energy_mj"), Some(1.25));
        assert_eq!(json_f64_field(&line, "bad"), None, "null is not a float");
        assert_eq!(json_string_field(&line, "absent"), None);
        assert_eq!(json_u64_field(&line, "key"), None, "strings do not parse");
    }

    #[test]
    fn unicode_escapes_decode() {
        let line = "{\"key\": \"ctrl \\u0001 end\"}";
        assert_eq!(
            json_string_field(line, "key").as_deref(),
            Some("ctrl \u{1} end")
        );
    }

    #[test]
    fn truncated_record_yields_none() {
        // An interrupted append can leave a half-written line behind; the
        // scanner must reject it rather than return a mangled value.
        let line = "{\"key\": \"net/s0";
        assert_eq!(json_string_field(line, "key"), None);
    }
}
