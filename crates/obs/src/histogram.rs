//! Fixed-footprint log₂ histogram over `u64` samples.
//!
//! Values land in bucket `⌊log₂ v⌋ + 1` (zero in bucket 0), so the whole
//! `u64` range fits in 65 buckets with no allocation per observation —
//! the property that lets per-position simulation events feed histograms
//! without touching the heap.

/// Number of buckets: one for zero plus one per possible `⌊log₂ v⌋`.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of a value: 0 for 0, else `⌊log₂ v⌋ + 1`.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a bucket (the quantile estimate it reports).
fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q ∈ [0, 1]` — an
    /// upper estimate within a factor of 2 (the bucket width). Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_defined() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn stats_track_samples() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 9, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1039);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        assert!((h.mean() - 207.8).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_upper_bucket_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(3);
        }
        h.observe(1000);
        // p50 of 99×3 + 1×1000 lands in the [2,3] bucket.
        assert_eq!(h.quantile(0.5), 3);
        // p100 is clamped to the observed max.
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Histogram::new();
        a.observe(2);
        let mut b = Histogram::new();
        b.observe(7);
        b.observe(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 9);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 7);
    }
}
