//! Minimal JSON writer (the workspace's dependency policy forbids external
//! crates, so manifests are emitted by hand through this one serializer —
//! correct escaping and comma placement in a single place).

/// An append-only JSON writer with automatic comma placement.
///
/// Calls must follow JSON's grammar (a `key` before every value inside an
/// object, no `key` inside arrays); the writer tracks nesting depth and
/// whether a separator is due, nothing more.
///
/// # Examples
///
/// ```
/// use escalate_obs::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("name");
/// w.string("a \"quoted\" value");
/// w.key("items");
/// w.begin_array();
/// w.u64(1);
/// w.u64(2);
/// w.end_array();
/// w.end_object();
/// assert_eq!(
///     w.finish(),
///     "{\"name\": \"a \\\"quoted\\\" value\", \"items\": [1, 2]}"
/// );
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` when the next value needs a
    /// leading comma.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// A writer with an empty buffer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Consumes the writer, returning the JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    fn separate(&mut self) {
        if let Some(due) = self.needs_comma.last_mut() {
            if *due {
                self.out.push_str(", ");
            }
            *due = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.separate();
        self.out.push('{');
        self.needs_comma.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.separate();
        self.out.push('[');
        self.needs_comma.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    /// Writes an object key. The following call writes its value.
    pub fn key(&mut self, k: &str) {
        self.separate();
        escape_into(&mut self.out, k);
        self.out.push_str(": ");
        // The value after a key is part of the same member: suppress the
        // comma the value emitter would otherwise insert.
        if let Some(due) = self.needs_comma.last_mut() {
            *due = false;
        }
    }

    /// Writes a string value.
    pub fn string(&mut self, v: &str) {
        self.separate();
        escape_into(&mut self.out, v);
        if let Some(due) = self.needs_comma.last_mut() {
            *due = true;
        }
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.separate();
        self.out.push_str(&v.to_string());
    }

    /// Writes a float value (JSON has no NaN/∞ — they serialize as null).
    pub fn f64(&mut self, v: f64) {
        self.separate();
        if v.is_finite() {
            // Enough digits to round-trip f64, without trailing noise.
            let s = format!("{v}");
            self.out.push_str(&s);
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a pre-rendered JSON value verbatim as the next value — for
    /// embedding a record produced by another writer (a registry
    /// snapshot, a unit record) without re-parsing it. The caller
    /// guarantees `json` is a complete, valid JSON value.
    pub fn raw(&mut self, json: &str) {
        self.separate();
        self.out.push_str(json);
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.separate();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Convenience: `key` + string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.string(v);
    }

    /// Convenience: `key` + integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64(v);
    }

    /// Convenience: `key` + float value.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.f64(v);
    }

    /// Convenience: `key` + boolean value.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.bool(v);
    }
}

/// Appends `s` as a JSON string literal (quotes included).
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures_place_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("a", 1);
        w.key("b");
        w.begin_array();
        w.u64(1);
        w.begin_object();
        w.field_bool("x", true);
        w.end_object();
        w.string("s");
        w.end_array();
        w.field_f64("c", 2.5);
        w.end_object();
        assert_eq!(
            w.finish(),
            "{\"a\": 1, \"b\": [1, {\"x\": true}, \"s\"], \"c\": 2.5}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.string("line\nbreak \"q\" \\ \u{1}");
        w.end_array();
        assert_eq!(w.finish(), "[\"line\\nbreak \\\"q\\\" \\\\ \\u0001\"]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(f64::NAN);
        w.f64(f64::INFINITY);
        w.f64(1.0);
        w.end_array();
        assert_eq!(w.finish(), "[null, null, 1]");
    }

    #[test]
    fn raw_embeds_prerendered_values_with_comma_placement() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("a", 1);
        w.key("b");
        w.raw("{\"x\": 2}");
        w.key("c");
        w.begin_array();
        w.raw("{\"y\": 3}");
        w.raw("4");
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            "{\"a\": 1, \"b\": {\"x\": 2}, \"c\": [{\"y\": 3}, 4]}"
        );
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.begin_array();
        w.end_array();
        w.key("o");
        w.begin_object();
        w.end_object();
        w.end_object();
        assert_eq!(w.finish(), "{\"a\": [], \"o\": {}}");
    }
}
