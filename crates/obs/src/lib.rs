#![warn(missing_docs)]

//! Zero-dependency observability layer for the ESCALATE workspace:
//! counters, log₂ histograms, and wall-clock timing spans, aggregated in a
//! thread-safe [`Registry`] and exportable as JSON.
//!
//! # Design
//!
//! The workspace's simulation hot paths must stay allocation-free, so this
//! crate follows two rules:
//!
//! 1. **No recorder installed → no work.** The process-global recorder
//!    slot ([`global`]) starts empty; every global helper ([`counter_add`],
//!    [`span`]) returns immediately — without reading the clock or
//!    allocating — when nothing is installed. Simulation outputs are
//!    bit-identical whether or not a recorder is present, because
//!    observers only *read* the event stream.
//! 2. **Hot loops aggregate locally, flush coarsely.** Per-event APIs on
//!    the [`Registry`] take one short mutex each; code on a per-position
//!    hot path (millions of events per layer) should fold events into
//!    plain local fields and flush once per layer — see
//!    `escalate_sim::observe::ObsObserver` for the canonical adapter.
//!
//! Metric names are dot-separated static strings (`"sim.ca_adds"`,
//! `"pipeline.decompose"`); labeled variants append `/label`
//! (`"bench.accelerator/ESCALATE"`). Keys are stored in `BTreeMap`s so
//! every export is deterministically ordered.
//!
//! # Examples
//!
//! ```
//! use escalate_obs::Registry;
//! use std::sync::Arc;
//!
//! let reg = Arc::new(Registry::new());
//! reg.counter_add("demo.events", 3);
//! reg.observe("demo.cycles", 17);
//! {
//!     let _timer = reg.span("demo.stage");
//!     // ... timed work ...
//! }
//! assert_eq!(reg.counter("demo.events"), 3);
//! let json = reg.to_json();
//! assert!(json.contains("\"demo.events\": 3"));
//! ```

pub mod histogram;
pub mod json;
pub mod jsonl;
pub mod registry;

pub use histogram::Histogram;
pub use json::JsonWriter;
pub use jsonl::{json_f64_field, json_string_field, json_u64_field, JsonlWriter};
pub use registry::{Registry, Snapshot, SpanStats, SpanTimer};

use std::sync::{Arc, RwLock};

/// The process-global recorder slot. Empty until [`install`] is called.
static GLOBAL: RwLock<Option<Arc<Registry>>> = RwLock::new(None);

/// Installs `registry` as the process-global recorder, returning the
/// previously installed one (if any).
///
/// Everything wired through the global helpers — pipeline stage spans,
/// bench cache counters, the simulation engine's per-layer flushes —
/// starts recording into it. Installation is process-wide: concurrent
/// runs share one registry, so callers that need isolated numbers (tests,
/// libraries) should pass a [`Registry`] explicitly instead.
pub fn install(registry: Arc<Registry>) -> Option<Arc<Registry>> {
    GLOBAL
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .replace(registry)
}

/// Removes and returns the process-global recorder, if one was installed.
/// Subsequent global helpers become no-ops again.
pub fn uninstall() -> Option<Arc<Registry>> {
    GLOBAL
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
}

/// The installed global recorder, or `None`. The `Arc` clone is the only
/// cost when a recorder is installed; when none is, this is one read lock.
pub fn global() -> Option<Arc<Registry>> {
    GLOBAL
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Adds `v` to the named counter on the global recorder (no-op when none
/// is installed).
pub fn counter_add(name: &str, v: u64) {
    if let Some(reg) = global() {
        reg.counter_add(name, v);
    }
}

/// Adds `v` to the `name/label` counter on the global recorder (no-op
/// when none is installed).
pub fn counter_add_labeled(name: &str, label: &str, v: u64) {
    if let Some(reg) = global() {
        reg.counter_add_labeled(name, label, v);
    }
}

/// Records `v` into the named histogram on the global recorder (no-op
/// when none is installed).
pub fn observe(name: &str, v: u64) {
    if let Some(reg) = global() {
        reg.observe(name, v);
    }
}

/// Starts a timing span against the global recorder. When no recorder is
/// installed the returned guard holds nothing and never reads the clock.
pub fn span(name: &'static str) -> SpanTimer {
    SpanTimer::start(global(), name, None)
}

/// [`span`] with a dynamic label: the span records under `name/label`.
/// The label is only copied when a recorder is installed.
pub fn span_labeled(name: &'static str, label: &str) -> SpanTimer {
    let reg = global();
    let label = reg.as_ref().map(|_| label.to_string());
    SpanTimer::start(reg, name, label)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-slot tests share one process-wide slot, so they run as one
    // test to avoid install/uninstall races between parallel test threads.
    #[test]
    fn global_slot_lifecycle() {
        // Nothing installed: helpers are no-ops.
        assert!(global().is_none());
        counter_add("t.noop", 1);
        observe("t.noop", 1);
        drop(span("t.noop"));
        drop(span_labeled("t.noop", "x"));

        let reg = Arc::new(Registry::new());
        assert!(install(Arc::clone(&reg)).is_none());
        counter_add("t.global", 2);
        counter_add_labeled("t.global", "lbl", 3);
        observe("t.hist", 9);
        drop(span("t.span"));
        drop(span_labeled("t.span", "x"));
        assert_eq!(reg.counter("t.global"), 2);
        assert_eq!(reg.counter("t.global/lbl"), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["t.hist"].count(), 1);
        assert_eq!(snap.spans["t.span"].count, 1);
        assert_eq!(snap.spans["t.span/x"].count, 1);

        // Replacing returns the old registry; uninstall empties the slot.
        let other = Arc::new(Registry::new());
        let prev = install(other).expect("previous registry returned");
        assert!(Arc::ptr_eq(&prev, &reg));
        assert!(uninstall().is_some());
        assert!(global().is_none());
        counter_add("t.after", 1); // no-op again
        assert_eq!(reg.counter("t.after"), 0);
    }
}
