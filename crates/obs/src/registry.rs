//! The metric registry: named counters, histograms, and timing spans
//! behind one short mutex, with deterministic (sorted) export.

use crate::histogram::Histogram;
use crate::json::JsonWriter;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Aggregate wall-clock statistics of one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed span instances.
    pub count: u64,
    /// Total time across instances, in nanoseconds.
    pub total_ns: u64,
    /// Slowest single instance, in nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStats>,
}

/// A point-in-time copy of everything a [`Registry`] holds.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Span statistics by name.
    pub spans: BTreeMap<String, SpanStats>,
}

/// A thread-safe metric registry.
///
/// All methods take `&self`; aggregation happens under one short mutex.
/// Hot loops should batch locally and flush per layer/stage rather than
/// call per event (see the crate docs).
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

fn compose(name: &str, label: &str) -> String {
    let mut key = String::with_capacity(name.len() + 1 + label.len());
    key.push_str(name);
    key.push('/');
    key.push_str(label);
    key
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock cannot leave the maps in a
        // half-updated state (every update is a single aggregate op), so
        // recover from poisoning instead of cascading.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Adds `v` to the named counter (created at 0 on first use).
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(v),
            None => {
                inner.counters.insert(name.to_string(), v);
            }
        }
    }

    /// Adds `v` to the `name/label` counter.
    pub fn counter_add_labeled(&self, name: &str, label: &str, v: u64) {
        self.counter_add(&compose(name, label), v);
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Records `v` into the named histogram.
    pub fn observe(&self, name: &str, v: u64) {
        let mut inner = self.lock();
        match inner.histograms.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                let mut h = Histogram::new();
                h.observe(v);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Folds a locally-accumulated histogram into the named one — the
    /// flush half of the batch-locally pattern.
    pub fn merge_histogram(&self, name: &str, h: &Histogram) {
        if h.count() == 0 {
            return;
        }
        let mut inner = self.lock();
        match inner.histograms.get_mut(name) {
            Some(existing) => existing.merge(h),
            None => {
                inner.histograms.insert(name.to_string(), h.clone());
            }
        }
    }

    /// Records a completed span of `ns` nanoseconds under `name`.
    pub fn record_span_ns(&self, name: &str, ns: u64) {
        let mut inner = self.lock();
        match inner.spans.get_mut(name) {
            Some(s) => s.record(ns),
            None => {
                let mut s = SpanStats::default();
                s.record(ns);
                inner.spans.insert(name.to_string(), s);
            }
        }
    }

    /// Starts a wall-clock span recorded (on drop) under `name`.
    pub fn span(self: &Arc<Registry>, name: &'static str) -> SpanTimer {
        SpanTimer::start(Some(Arc::clone(self)), name, None)
    }

    /// Starts a span recorded under `name/label`.
    pub fn span_labeled(self: &Arc<Registry>, name: &'static str, label: &str) -> SpanTimer {
        SpanTimer::start(Some(Arc::clone(self)), name, Some(label.to_string()))
    }

    /// Copies out every metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner.counters.clone(),
            histograms: inner.histograms.clone(),
            spans: inner.spans.clone(),
        }
    }

    /// Serializes the registry as a JSON object with `counters`,
    /// `histograms`, and `spans` sections (sorted keys; see
    /// [`Snapshot::write_json`] for the schema).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.snapshot().write_json(&mut w);
        w.finish()
    }
}

impl Snapshot {
    /// Writes the snapshot as one JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": {"name": 1},
    ///   "histograms": {"name": {"count": 1, "sum": 2, "min": 2, "max": 2,
    ///                            "mean": 2.0, "p50": 3, "p99": 3}},
    ///   "spans": {"name": {"count": 1, "total_ms": 0.5, "max_ms": 0.5}}
    /// }
    /// ```
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for (name, v) in &self.counters {
            w.field_u64(name, *v);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (name, h) in &self.histograms {
            w.key(name);
            w.begin_object();
            w.field_u64("count", h.count());
            w.field_u64("sum", h.sum());
            w.field_u64("min", h.min());
            w.field_u64("max", h.max());
            w.field_f64("mean", h.mean());
            w.field_u64("p50", h.quantile(0.5));
            w.field_u64("p99", h.quantile(0.99));
            w.end_object();
        }
        w.end_object();
        w.key("spans");
        w.begin_object();
        for (name, s) in &self.spans {
            w.key(name);
            w.begin_object();
            w.field_u64("count", s.count);
            w.field_f64("total_ms", s.total_ms());
            w.field_f64("max_ms", s.max_ns as f64 / 1e6);
            w.end_object();
        }
        w.end_object();
        w.end_object();
    }
}

/// A wall-clock timer recording into a registry when dropped.
///
/// When constructed without a registry (the uninstalled-global case) it
/// holds nothing and never reads the clock.
#[derive(Debug)]
pub struct SpanTimer {
    target: Option<(Arc<Registry>, Instant)>,
    name: &'static str,
    label: Option<String>,
}

impl SpanTimer {
    /// Starts a span against `reg` (or a no-op timer when `None`).
    pub fn start(reg: Option<Arc<Registry>>, name: &'static str, label: Option<String>) -> Self {
        SpanTimer {
            target: reg.map(|r| (r, Instant::now())),
            name,
            label,
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((reg, start)) = self.target.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            match &self.label {
                Some(l) => reg.record_span_ns(&compose(self.name, l), ns),
                None => reg.record_span_ns(self.name, ns),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.counter_add_labeled("a", "x", 1);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("a/x"), 1);
        assert_eq!(r.counter("missing"), 0);
        r.counter_add("a", u64::MAX);
        assert_eq!(r.counter("a"), u64::MAX);
    }

    #[test]
    fn histograms_and_merge() {
        let r = Registry::new();
        r.observe("h", 4);
        let mut local = Histogram::new();
        local.observe(8);
        local.observe(2);
        r.merge_histogram("h", &local);
        r.merge_histogram("h", &Histogram::new()); // empty: no-op
        let snap = r.snapshot();
        assert_eq!(snap.histograms["h"].count(), 3);
        assert_eq!(snap.histograms["h"].sum(), 14);
    }

    #[test]
    fn spans_record_on_drop() {
        let r = Arc::new(Registry::new());
        {
            let _t = r.span("s");
        }
        {
            let _t = r.span_labeled("s", "lbl");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["s"].count, 1);
        assert_eq!(snap.spans["s/lbl"].count, 1);
    }

    #[test]
    fn json_export_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter_add("z", 1);
        r.counter_add("a", 2);
        r.observe("h", 5);
        r.record_span_ns("sp", 1_500_000);
        let json = r.to_json();
        assert!(json.contains("\"a\": 2"));
        let a = json.find("\"a\": 2").unwrap();
        let z = json.find("\"z\": 1").unwrap();
        assert!(a < z, "keys must be sorted: {json}");
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"total_ms\": 1.5"));
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.counter_add("n", 1);
                        r.observe("h", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("n"), 8000);
        assert_eq!(r.snapshot().histograms["h"].count(), 8000);
    }
}
