//! The mask-generation pipeline: rolling masks feeding the dilution
//! datapath across chunk boundaries (paper §4.2.2, Figure 5).
//!
//! Mask generation (the bitwise ANDs and gathers over the sparse maps)
//! runs ahead of the value stream, one 64-bit map word per pass. Because
//! the nonzero distributions of activations and coefficients differ, the
//! filter-mask bits produced by one pass rarely align with one bus-width
//! value chunk — the rolling mask accumulates fragments and releases
//! exactly chunk-sized windows, inserting an implicit barrier whenever a
//! position's activations are exhausted so chunks of different positions
//! are never filtered by each other's masks.

use crate::bitgather::gather_bits;
use crate::rolling::RollingMask;

/// One position's sparse maps, as stored (64-bit words).
#[derive(Debug, Clone)]
pub struct PositionMaps {
    /// Activation sparse map.
    pub act_map: Vec<u64>,
    /// Coefficient sparse map (same word count).
    pub coef_map: Vec<u64>,
    /// Dense positions covered.
    pub width: usize,
}

/// A released window of filter-mask bits covering the next `len` nonzero
/// activations of the current position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskWindow {
    /// Filter bits (LSB = first activation in the window).
    pub filter: u64,
    /// Number of valid bits.
    pub len: usize,
    /// Whether this window ends its position (implicit barrier).
    pub barrier: bool,
}

/// Streams positions' maps into chunk-aligned filter-mask windows.
#[derive(Debug, Default)]
pub struct MaskPipeline {
    rolling: RollingMask,
    /// Mask-generation passes performed (one per 64-bit map word).
    passes: u64,
}

impl MaskPipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        MaskPipeline::default()
    }

    /// Mask-generation passes performed so far.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Processes one position: generates its filter mask word by word
    /// (as the hardware does, ahead of the values) and releases
    /// `chunk`-bit windows, with the final window flagged as a barrier.
    ///
    /// The filter mask is `gather(act ∧ coef, by act)`: one bit per
    /// nonzero activation saying whether its coefficient survives.
    ///
    /// # Panics
    ///
    /// Panics if the maps' word counts disagree or `chunk` is 0 or > 64.
    pub fn position_windows(&mut self, maps: &PositionMaps, chunk: usize) -> Vec<MaskWindow> {
        assert!(chunk > 0 && chunk <= 64, "chunk width must be 1..=64");
        assert_eq!(
            maps.act_map.len(),
            maps.coef_map.len(),
            "map word counts differ"
        );
        let total_nnz: usize = maps.act_map.iter().map(|w| w.count_ones() as usize).sum();
        self.rolling.start_position(total_nnz);

        let mut windows = Vec::new();
        let mut emitted = 0usize;
        for (aw, cw) in maps.act_map.iter().zip(&maps.coef_map) {
            // One mask-generation pass per stored word.
            self.passes += 1;
            let inter = aw & cw;
            let frag = gather_bits(inter, *aw);
            let bits = aw.count_ones() as usize;
            if bits > 0 {
                self.rolling.push(frag, bits);
            }
            // Release as many full windows as the rolling mask can cover.
            while self.rolling.remaining_in_position() > 0 {
                let want = chunk.min(self.rolling.remaining_in_position());
                if self.rolling.len() < want {
                    break;
                }
                let (filter, len) = self
                    .rolling
                    .take_with_barrier(chunk)
                    .expect("buffered bits cover the window");
                emitted += len;
                windows.push(MaskWindow {
                    filter,
                    len,
                    barrier: emitted == total_nnz,
                });
            }
        }
        debug_assert_eq!(
            emitted, total_nnz,
            "every nonzero activation gets a mask bit"
        );
        windows
    }
}

/// Reference: the position's whole filter mask computed in one shot.
pub fn reference_filter_mask(maps: &PositionMaps) -> Vec<bool> {
    let mut out = Vec::new();
    for (aw, cw) in maps.act_map.iter().zip(&maps.coef_map) {
        let mut word = *aw;
        while word != 0 {
            let b = word.trailing_zeros();
            word &= word - 1;
            out.push(cw >> b & 1 == 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn maps(act: &[u64], coef: &[u64], width: usize) -> PositionMaps {
        PositionMaps {
            act_map: act.to_vec(),
            coef_map: coef.to_vec(),
            width,
        }
    }

    fn windows_to_bits(windows: &[MaskWindow]) -> Vec<bool> {
        let mut out = Vec::new();
        for w in windows {
            for i in 0..w.len {
                out.push(w.filter >> i & 1 == 1);
            }
        }
        out
    }

    #[test]
    fn windows_reassemble_the_reference_mask() {
        let m = maps(
            &[0xF0F0_A5A5_0FF0_3C3C, 0x0000_FFFF_0000_1111],
            &[0x1234_5678_9ABC_DEF0, 0xFFFF_0000_FFFF_FFFF],
            128,
        );
        let mut pipe = MaskPipeline::new();
        let windows = pipe.position_windows(&m, 16);
        assert_eq!(windows_to_bits(&windows), reference_filter_mask(&m));
        assert_eq!(pipe.passes(), 2);
    }

    #[test]
    fn last_window_carries_the_barrier() {
        let m = maps(&[0b1011_0110], &[0b1111_0000], 8);
        let mut pipe = MaskPipeline::new();
        let windows = pipe.position_windows(&m, 4);
        assert!(!windows.is_empty());
        assert!(windows.last().unwrap().barrier);
        assert!(windows[..windows.len() - 1].iter().all(|w| !w.barrier));
    }

    #[test]
    fn partial_final_window_when_nnz_not_chunk_aligned() {
        // 5 nonzero activations, chunk width 4: windows of 4 and 1.
        let m = maps(&[0b1011_0110], &[0b0000_1111], 8);
        let mut pipe = MaskPipeline::new();
        let windows = pipe.position_windows(&m, 4);
        assert_eq!(
            windows.iter().map(|w| w.len).collect::<Vec<_>>(),
            vec![4, 1]
        );
        assert_eq!(windows_to_bits(&windows), reference_filter_mask(&m));
    }

    #[test]
    fn positions_never_mix_across_barriers() {
        let a = maps(&[0b111], &[0b101], 3);
        let b = maps(&[0b11_0000], &[0b10_0000], 6);
        let mut pipe = MaskPipeline::new();
        let wa = pipe.position_windows(&a, 4);
        let wb = pipe.position_windows(&b, 4);
        assert_eq!(windows_to_bits(&wa), reference_filter_mask(&a));
        assert_eq!(windows_to_bits(&wb), reference_filter_mask(&b));
        assert!(wa.last().unwrap().barrier && wb.last().unwrap().barrier);
    }

    #[test]
    fn empty_position_produces_no_windows() {
        let m = maps(&[0], &[0b1111], 4);
        let mut pipe = MaskPipeline::new();
        assert!(pipe.position_windows(&m, 4).is_empty());
    }

    #[test]
    fn pseudorandom_streams_roundtrip() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let mut pipe = MaskPipeline::new();
        for _ in 0..200 {
            let words = 1 + (next() % 3) as usize;
            let act: Vec<u64> = (0..words).map(|_| next()).collect();
            let coef: Vec<u64> = (0..words).map(|_| next()).collect();
            let m = maps(&act, &coef, words * 64);
            let windows = pipe.position_windows(&m, 16);
            assert_eq!(windows_to_bits(&windows), reference_filter_mask(&m));
        }
    }
}
