//! The rolling mask with implicit barriers (paper §4.2.2, Figure 5).
//!
//! The masks produced by one pass of the dilution gather networks may not
//! cover the whole incoming activation chunk (the distribution of nonzeros
//! differs between activations and coefficients). The rolling mask
//! accumulates newly generated mask fragments — each left-shifted past the
//! bits already held — and releases a window once enough bits exist to
//! cover the current chunk. A per-position element counter inserts an
//! *implicit barrier*: when all elements of the current input position have
//! been covered, the window is split so activations of different positions
//! are never filtered by one another's masks.

/// Accumulates mask fragments and releases chunk-sized windows with
/// position barriers.
///
/// # Examples
///
/// ```
/// use escalate_sparse::RollingMask;
///
/// let mut rm = RollingMask::new();
/// rm.push(0b101, 3);
/// rm.push(0b11, 2);
/// // 5 bits buffered; take a 4-bit window.
/// assert_eq!(rm.take(4), Some(0b1101));
/// assert_eq!(rm.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RollingMask {
    bits: u128,
    len: usize,
    /// Remaining elements of the current input position (for barriers).
    remaining_in_position: usize,
}

impl RollingMask {
    /// Creates an empty rolling mask.
    pub fn new() -> Self {
        RollingMask::default()
    }

    /// Number of buffered mask bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bits are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `count` freshly generated mask bits. The new fragment is
    /// left-shifted past the existing bits and OR-ed in, exactly as the
    /// hardware does.
    ///
    /// # Panics
    ///
    /// Panics if more than 128 bits would be buffered or if `fragment` has
    /// bits above `count`.
    pub fn push(&mut self, fragment: u64, count: usize) {
        assert!(self.len + count <= 128, "rolling mask overflow");
        if count < 64 {
            assert_eq!(fragment >> count, 0, "fragment has bits beyond its count");
        }
        self.bits |= (fragment as u128) << self.len;
        self.len += count;
    }

    /// Takes a `width`-bit window from the front if enough bits are
    /// buffered; returns `None` otherwise (the caller must push more
    /// fragments first).
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn take(&mut self, width: usize) -> Option<u64> {
        assert!(width <= 64, "windows are at most 64 bits");
        if self.len < width {
            return None;
        }
        let out = (self.bits & ((1u128 << width) - 1)) as u64;
        self.bits >>= width;
        self.len -= width;
        Some(out)
    }

    /// Declares that the current input position still has `n` elements to
    /// cover; used to detect barriers.
    pub fn start_position(&mut self, n: usize) {
        self.remaining_in_position = n;
    }

    /// Consumes a window of up to `width` bits, honouring the position
    /// barrier: if fewer than `width` elements remain in the current
    /// position, only that many bits are released (a partial window — the
    /// paper's "two partially utilized cycles"). Returns the window and how
    /// many bits it contains, or `None` if the buffer cannot cover it yet.
    pub fn take_with_barrier(&mut self, width: usize) -> Option<(u64, usize)> {
        let want = width.min(self.remaining_in_position.max(1));
        let got = self.take(want)?;
        self.remaining_in_position = self.remaining_in_position.saturating_sub(want);
        Some((got, want))
    }

    /// Elements remaining before the current position's barrier.
    pub fn remaining_in_position(&self) -> usize {
        self.remaining_in_position
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_then_take_roundtrip() {
        let mut rm = RollingMask::new();
        rm.push(0b1011, 4);
        assert_eq!(rm.take(4), Some(0b1011));
        assert!(rm.is_empty());
    }

    #[test]
    fn fragments_concatenate_in_order() {
        let mut rm = RollingMask::new();
        rm.push(0b01, 2);
        rm.push(0b1, 1);
        rm.push(0b10, 2);
        // bits (LSB first): 1,0 | 1 | 0,1 → word 0b10101
        assert_eq!(rm.take(5), Some(0b10101));
    }

    #[test]
    fn take_requires_enough_bits() {
        let mut rm = RollingMask::new();
        rm.push(0b1, 1);
        assert_eq!(rm.take(2), None);
        rm.push(0b1, 1);
        assert_eq!(rm.take(2), Some(0b11));
    }

    #[test]
    fn window_consumes_front_only() {
        let mut rm = RollingMask::new();
        rm.push(0xFF, 8);
        rm.push(0x00, 8);
        assert_eq!(rm.take(8), Some(0xFF));
        assert_eq!(rm.take(8), Some(0x00));
    }

    #[test]
    fn barrier_splits_windows() {
        let mut rm = RollingMask::new();
        rm.start_position(3);
        rm.push(0b111111, 6);
        // Only 3 elements remain in the position, so a width-4 request
        // returns a 3-bit partial window, then the barrier resets.
        let (w, n) = rm.take_with_barrier(4).unwrap();
        assert_eq!((w, n), (0b111, 3));
        assert_eq!(rm.remaining_in_position(), 0);
        // 3 bits remain buffered; the next position reuses them plus one more.
        rm.start_position(10);
        rm.push(0b0, 1);
        let (w2, n2) = rm.take_with_barrier(4).unwrap();
        assert_eq!(n2, 4);
        assert_eq!(w2, 0b0111);
    }

    #[test]
    fn full_windows_when_position_is_long() {
        let mut rm = RollingMask::new();
        rm.start_position(100);
        rm.push(u64::MAX, 64);
        let (w, n) = rm.take_with_barrier(16).unwrap();
        assert_eq!(n, 16);
        assert_eq!(w, 0xFFFF);
        assert_eq!(rm.remaining_in_position(), 84);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut rm = RollingMask::new();
        rm.push(0, 64);
        rm.push(0, 64);
        rm.push(0, 1);
    }

    #[test]
    #[should_panic(expected = "beyond its count")]
    fn oversized_fragment_panics() {
        let mut rm = RollingMask::new();
        rm.push(0b100, 2);
    }
}
