#![warn(missing_docs)]

//! Sparse encodings and the bit-manipulation hardware primitives of the
//! ESCALATE accelerator.
//!
//! This crate models Section 4.2 of the paper:
//!
//! - [`sparsemap`] — the SparseMap bitmask encoding (adopted from SparTen)
//!   and the 2-level variant with 16-bit chunk presence bits, plus exact
//!   storage-size accounting used for Table 1,
//! - [`bitgather`] — the bit-gather operation, both as a functional
//!   reference and as a stage-by-stage inverse-butterfly network model
//!   (Figure 4(b)),
//! - [`rolling`] — the rolling mask with implicit position barriers
//!   (Figure 5),
//! - [`dilution`] — the Dilution step matching activation chunks against
//!   ternary coefficients with bit-wise AND + gather (Figure 4(c)),
//! - [`concentration`] — the Concentration step filling holes via
//!   column-wise look-ahead and look-aside (Figure 6),
//! - [`csr`] — CSR/CSC encodings used as a storage-cost baseline.

pub mod actcodec;
pub mod bitgather;
pub mod concentration;
pub mod csr;
pub mod dilution;
pub mod maskpipe;
pub mod rolling;
pub mod sparsemap;

pub use bitgather::{gather_bits, gather_bits_butterfly, GATHER_STAGES_64};
pub use concentration::{ConcentrationBuffer, ConcentrationStats, MaskConcentration};
pub use dilution::{dilute, dilute_into, DilutedChunk, DilutionInput, DilutionOutcome};
pub use maskpipe::{MaskPipeline, MaskWindow, PositionMaps};
pub use rolling::RollingMask;
pub use sparsemap::{SparseMap, TwoLevelSparseMap};
