//! The activation storage layout of Figure 4(a): feature maps sliced along
//! the row dimension at stride `l`, stored in C-order as compressed chunk
//! streams with 2-level sparse maps.
//!
//! Each PE-slice position owns the rows `{s, s+l, s+2l, …}`; its stream
//! holds, per (row, column) position in scan order, the nonzero
//! activations of all `C` channels (C-order — the order the weighted
//! accumulation consumes them, §4.2.1), packed into bus-width chunks. The
//! per-position sparse maps travel separately so the mask pipeline can run
//! ahead of the values.

use crate::sparsemap::TwoLevelSparseMap;

/// One slice-position's encoded activation stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceStream {
    /// Rows this stream covers (ascending, stride `l`).
    pub rows: Vec<usize>,
    /// Nonzero values in (row, column, channel) scan order.
    pub values: Vec<f32>,
    /// Per (row, column) position: the 2-level sparse map over channels.
    pub maps: Vec<TwoLevelSparseMap>,
    /// Number of channels.
    pub c: usize,
    /// Columns per row.
    pub y: usize,
}

impl SliceStream {
    /// Total stored bits: values at `value_bits` plus the 2-level maps.
    pub fn size_bits(&self, value_bits: usize) -> usize {
        self.values.len() * value_bits
            + self
                .maps
                .iter()
                .map(|m| m.total_chunks() + m.stored_chunks() * 16)
                .sum::<usize>()
    }

    /// Splits the value stream into bus-width chunks (the units the input
    /// buffer stores and the H-tree broadcasts), returning the chunk
    /// count.
    pub fn chunk_count(&self, bus_elems: usize) -> usize {
        self.values.len().div_ceil(bus_elems.max(1))
    }
}

/// Encodes a `C×X×Y` feature map into `l` slice streams.
///
/// # Panics
///
/// Panics if `data.len() != c*x*y` or `l == 0`.
pub fn encode_feature_map(
    data: &[f32],
    c: usize,
    x: usize,
    y: usize,
    l: usize,
) -> Vec<SliceStream> {
    assert_eq!(data.len(), c * x * y, "data must be C*X*Y");
    assert!(l > 0, "at least one slice");
    (0..l)
        .map(|s| {
            let rows: Vec<usize> = (s..x).step_by(l).collect();
            let mut values = Vec::new();
            let mut maps = Vec::new();
            for &xi in &rows {
                for yi in 0..y {
                    // Gather the channel vector at this position (C-order).
                    let chan: Vec<f32> = (0..c).map(|ci| data[(ci * x + xi) * y + yi]).collect();
                    values.extend(chan.iter().copied().filter(|&v| v != 0.0));
                    maps.push(TwoLevelSparseMap::encode(&chan));
                }
            }
            SliceStream {
                rows,
                values,
                maps,
                c,
                y,
            }
        })
        .collect()
}

/// Decodes slice streams back into the dense `C×X×Y` buffer.
///
/// # Panics
///
/// Panics if the streams are inconsistent with the given dimensions.
pub fn decode_feature_map(streams: &[SliceStream], c: usize, x: usize, y: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; c * x * y];
    for stream in streams {
        assert_eq!(stream.c, c, "channel count mismatch");
        assert_eq!(stream.y, y, "column count mismatch");
        let mut vi = 0usize;
        for (pi, &xi) in stream.rows.iter().enumerate() {
            assert!(xi < x, "row out of range");
            for yi in 0..y {
                let map = &stream.maps[pi * y + yi];
                let dense = map.decode();
                for (ci, &v) in dense.iter().enumerate() {
                    if v != 0.0 {
                        // Values must match the stream order exactly.
                        debug_assert_eq!(v, stream.values[vi], "value stream out of order");
                        out[(ci * x + xi) * y + yi] = stream.values[vi];
                        vi += 1;
                    }
                }
            }
        }
        assert_eq!(vi, stream.values.len(), "value stream length mismatch");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(c: usize, x: usize, y: usize) -> Vec<f32> {
        (0..c * x * y)
            .map(|i| {
                if (i * 7) % 5 < 2 {
                    (i % 13) as f32 + 1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_across_slice_counts() {
        let (c, x, y) = (10, 12, 7);
        let data = sample(c, x, y);
        for l in [1usize, 2, 5, 12] {
            let streams = encode_feature_map(&data, c, x, y, l);
            assert_eq!(streams.len(), l);
            assert_eq!(decode_feature_map(&streams, c, x, y), data, "l={l}");
        }
    }

    #[test]
    fn rows_interleave_at_stride_l() {
        let (c, x, y) = (3, 10, 4);
        let streams = encode_feature_map(&sample(c, x, y), c, x, y, 5);
        assert_eq!(streams[0].rows, vec![0, 5]);
        assert_eq!(streams[2].rows, vec![2, 7]);
        // Every row is owned by exactly one stream.
        let mut all: Vec<usize> = streams.iter().flat_map(|s| s.rows.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn values_are_in_c_order_per_position() {
        // One position, channels carry distinct values: stream preserves
        // channel order.
        let c = 5;
        let data: Vec<f32> = (0..c)
            .map(|ci| if ci % 2 == 0 { (ci + 1) as f32 } else { 0.0 })
            .collect();
        let streams = encode_feature_map(&data, c, 1, 1, 1);
        assert_eq!(streams[0].values, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn size_accounts_values_and_maps() {
        let (c, x, y) = (32, 4, 4);
        let data = sample(c, x, y);
        let streams = encode_feature_map(&data, c, x, y, 2);
        let nnz: usize = data.iter().filter(|&&v| v != 0.0).count();
        let total_bits: usize = streams.iter().map(|s| s.size_bits(8)).sum();
        assert!(total_bits >= nnz * 8, "values must be charged");
        assert!(
            total_bits < c * x * y * 8,
            "compressed must beat dense at 60% sparsity"
        );
    }

    #[test]
    fn chunk_count_matches_bus_width() {
        let (c, x, y) = (16, 4, 4);
        let data = sample(c, x, y);
        let streams = encode_feature_map(&data, c, x, y, 1);
        let nnz = streams[0].values.len();
        assert_eq!(streams[0].chunk_count(16), nnz.div_ceil(16));
        assert_eq!(streams[0].chunk_count(1), nnz);
    }

    #[test]
    fn empty_map_encodes_to_empty_streams() {
        let streams = encode_feature_map(&[0.0; 3 * 4 * 4], 3, 4, 4, 2);
        for s in &streams {
            assert!(s.values.is_empty());
            assert_eq!(s.chunk_count(16), 0);
        }
        assert_eq!(decode_feature_map(&streams, 3, 4, 4), vec![0.0; 48]);
    }
}
