//! Bit gather (parallel bit extract) — Figure 4(b) of the paper.
//!
//! Given a data word and a mask, bit gather collects the data bits at the
//! mask's set positions toward the least-significant side, preserving their
//! order. ESCALATE implements this with an inverse butterfly network of
//! `log2(n)` stages (after Hilewitz & Lee); we model both a functional
//! reference and the staged network so the hardware cost (stage count,
//! switch count) can be charged by the energy model.

/// Number of stages an inverse butterfly network needs for 64-bit words.
pub const GATHER_STAGES_64: usize = 6;

/// Functional reference: gathers `data` bits selected by `mask` toward bit 0,
/// preserving order.
///
/// # Examples
///
/// ```
/// use escalate_sparse::gather_bits;
///
/// // data  = 0b1011, mask = 0b1010 → selected bits (from LSB) are
/// // data[1]=1, data[3]=1 → packed result 0b11.
/// assert_eq!(gather_bits(0b1011, 0b1010), 0b11);
/// ```
pub fn gather_bits(data: u64, mask: u64) -> u64 {
    let mut out = 0u64;
    let mut out_pos = 0;
    let mut m = mask;
    while m != 0 {
        let i = m.trailing_zeros();
        if data >> i & 1 == 1 {
            out |= 1u64 << out_pos;
        }
        out_pos += 1;
        m &= m - 1;
    }
    out
}

/// Staged model of the inverse butterfly gather network.
///
/// Implements the `log2(n)`-stage sheep-and-goats compression (Hacker's
/// Delight §7-4), which maps one-to-one onto the control of an inverse
/// butterfly network: stage `i` conditionally shifts surviving bits right by
/// `2^i`. Returns the gathered word together with the per-stage movement
/// masks, so hardware models can charge energy per active switch.
pub fn gather_bits_butterfly(data: u64, mask: u64) -> ButterflyGather {
    let mut x = data & mask;
    let mut m = mask;
    let mut mk = !mask << 1; // count 0s to the right of each bit
    let mut stage_moves = [0u64; GATHER_STAGES_64];

    for (i, slot) in stage_moves.iter_mut().enumerate() {
        // Parallel prefix (XOR-scan) of mk.
        let mut mp = mk ^ (mk << 1);
        mp ^= mp << 2;
        mp ^= mp << 4;
        mp ^= mp << 8;
        mp ^= mp << 16;
        mp ^= mp << 32;
        let mv = mp & m; // bits to move this stage
        *slot = mv;
        m = (m ^ mv) | (mv >> (1 << i));
        let t = x & mv;
        x = (x ^ t) | (t >> (1 << i));
        mk &= !mp;
    }
    ButterflyGather {
        gathered: x,
        stage_moves,
    }
}

/// Result of [`gather_bits_butterfly`]: the gathered word plus per-stage
/// movement masks of the modeled network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ButterflyGather {
    /// Data bits packed toward bit 0 in original order.
    pub gathered: u64,
    /// For each of the `log2(64)` stages, the mask of bits that moved.
    pub stage_moves: [u64; GATHER_STAGES_64],
}

impl ButterflyGather {
    /// Total number of bit movements across all stages — a proxy for the
    /// switching activity (energy) of the network.
    pub fn switch_activity(&self) -> u32 {
        self.stage_moves.iter().map(|m| m.count_ones()).sum()
    }
}

/// Gathers elements of a slice selected by a bit mask, preserving order.
///
/// This is the element-level analogue used for the sign/filter masks in the
/// dilution step: position `i` of `items` survives when bit `i` of `mask`
/// is set.
pub fn gather_elements<T: Copy>(items: &[T], mask: u64) -> Vec<T> {
    assert!(
        items.len() <= 64,
        "element gather operates on <=64-element chunks"
    );
    items
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask >> i & 1 == 1)
        .map(|(_, &v)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_examples() {
        assert_eq!(gather_bits(0b1111, 0b0101), 0b11);
        assert_eq!(gather_bits(0b1000, 0b1000), 0b1);
        assert_eq!(gather_bits(0xFFFF_FFFF_FFFF_FFFF, 0), 0);
        assert_eq!(gather_bits(0, 0xFFFF_FFFF_FFFF_FFFF), 0);
    }

    #[test]
    fn identity_mask_is_identity() {
        let d = 0xDEAD_BEEF_0123_4567u64;
        assert_eq!(gather_bits(d, u64::MAX), d);
        assert_eq!(gather_bits_butterfly(d, u64::MAX).gathered, d);
    }

    #[test]
    fn butterfly_matches_reference_on_patterns() {
        let datas = [
            0u64,
            u64::MAX,
            0xAAAA_AAAA_AAAA_AAAA,
            0x0123_4567_89AB_CDEF,
            1 << 63,
        ];
        let masks = [
            0u64,
            u64::MAX,
            0x5555_5555_5555_5555,
            0xF0F0_F0F0_F0F0_F0F0,
            (1 << 40) - 1,
        ];
        for &d in &datas {
            for &m in &masks {
                assert_eq!(
                    gather_bits_butterfly(d, m).gathered,
                    gather_bits(d, m),
                    "d={d:#x} m={m:#x}"
                );
            }
        }
    }

    #[test]
    fn butterfly_matches_reference_pseudorandom() {
        // Simple LCG so the test is deterministic without a rand dependency.
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..500 {
            let d = next();
            let m = next();
            assert_eq!(gather_bits_butterfly(d, m).gathered, gather_bits(d, m));
        }
    }

    #[test]
    fn gathered_popcount_bounded_by_mask() {
        let d = 0xFFFF_0000_FFFF_0000u64;
        let m = 0x00FF_00FF_00FF_00FFu64;
        let g = gather_bits(d, m);
        assert!(g.count_ones() <= m.count_ones());
        // Gathered bits occupy the low popcount(mask) positions only.
        assert_eq!(g >> m.count_ones(), 0);
    }

    #[test]
    fn switch_activity_zero_when_mask_dense() {
        // Nothing moves when every bit survives in place.
        let g = gather_bits_butterfly(0x1234, u64::MAX);
        assert_eq!(g.switch_activity(), 0);
    }

    #[test]
    fn switch_activity_positive_when_compressing() {
        let g = gather_bits_butterfly(u64::MAX, 0xAAAA_AAAA_AAAA_AAAA);
        assert!(g.switch_activity() > 0);
    }

    #[test]
    fn element_gather_preserves_order() {
        let items = [10, 20, 30, 40, 50];
        assert_eq!(gather_elements(&items, 0b10101), vec![10, 30, 50]);
        assert_eq!(gather_elements(&items, 0), Vec::<i32>::new());
    }

    #[test]
    #[should_panic(expected = "<=64")]
    fn element_gather_rejects_long_chunks() {
        let items = vec![0u8; 65];
        let _ = gather_elements(&items, 0);
    }
}
