//! CSR/CSC-style index encodings used as a storage-cost baseline.
//!
//! Previous sparse accelerators (SCNN, Cambricon-X) encode nonzeros with
//! explicit per-element indices or run-length steps. For ternary
//! coefficients the cost of one index exceeds the cost of several values,
//! which is the paper's argument for SparseMap (§4.2.1). This module
//! provides the comparison encodings and their size models.

/// A CSR-style encoding of a logically 2-D `rows x cols` dense matrix:
/// row pointers plus per-element column indices.
///
/// # Examples
///
/// ```
/// use escalate_sparse::csr::Csr;
///
/// let m = Csr::encode(2, 3, &[0.0, 5.0, 0.0, 1.0, 0.0, 2.0]);
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.decode(), vec![0.0, 5.0, 0.0, 1.0, 0.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Encodes a dense row-major `rows x cols` slice.
    ///
    /// # Panics
    ///
    /// Panics if `dense.len() != rows * cols`.
    pub fn encode(rows: usize, cols: usize, dense: &[f32]) -> Self {
        assert_eq!(dense.len(), rows * cols, "dense buffer must be rows*cols");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense[r * cols + c];
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Reconstructs the dense row-major buffer.
    pub fn decode(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                out[r * self.cols + self.col_idx[i] as usize] = self.values[i];
            }
        }
        out
    }

    /// Storage cost in bits: `value_bits` per nonzero, `ceil(log2(cols))`
    /// bits per column index, and one row pointer per row of
    /// `ceil(log2(nnz+1))` bits.
    pub fn size_bits(&self, value_bits: usize) -> usize {
        let idx_bits = bits_for(self.cols);
        let ptr_bits = bits_for(self.nnz() + 1);
        self.nnz() * (value_bits + idx_bits) + (self.rows + 1) * ptr_bits
    }
}

/// Run-length ("step index") encoding as used by SCNN: each nonzero stores
/// the zero-run length before it in a fixed number of bits, with zero-value
/// padding when a run overflows the field.
#[derive(Debug, Clone, PartialEq)]
pub struct RunLength {
    len: usize,
    step_bits: usize,
    /// `(run, value)` pairs; `value == 0.0` entries are overflow padding.
    entries: Vec<(u32, f32)>,
}

impl RunLength {
    /// Encodes a dense slice with `step_bits`-wide run fields.
    ///
    /// # Panics
    ///
    /// Panics if `step_bits` is 0 or larger than 31.
    pub fn encode(dense: &[f32], step_bits: usize) -> Self {
        assert!(
            step_bits > 0 && step_bits < 32,
            "step_bits must be in 1..32"
        );
        let max_run = (1u32 << step_bits) - 1;
        let mut entries = Vec::new();
        let mut run = 0u32;
        for &v in dense {
            if v == 0.0 {
                run += 1;
                if run == max_run + 1 {
                    // Overflow: emit a padding zero value with a full run.
                    entries.push((max_run, 0.0));
                    run = 0;
                }
            } else {
                entries.push((run, v));
                run = 0;
            }
        }
        RunLength {
            len: dense.len(),
            step_bits,
            entries,
        }
    }

    /// Number of stored entries (including overflow padding).
    pub fn stored_entries(&self) -> usize {
        self.entries.len()
    }

    /// Reconstructs the dense vector.
    pub fn decode(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        let mut pos = 0usize;
        for &(run, v) in &self.entries {
            pos += run as usize;
            if v != 0.0 {
                out[pos] = v;
                pos += 1;
            } else {
                // Overflow padding consumes max_run zeros plus itself... the
                // padding entry itself encodes a zero at `pos`.
                pos += 1;
            }
        }
        out
    }

    /// Storage cost in bits: each entry stores a run field plus a value.
    pub fn size_bits(&self, value_bits: usize) -> usize {
        self.stored_entries() * (self.step_bits + value_bits)
    }
}

/// Smallest number of bits that can represent values `0..n` (at least 1).
pub fn bits_for(n: usize) -> usize {
    ((n.max(2) - 1).ilog2() + 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_roundtrip() {
        let dense = vec![0.0, 1.0, 0.0, 0.0, 2.0, 3.0, 0.0, 0.0, 0.0];
        let m = Csr::encode(3, 3, &dense);
        assert_eq!(m.decode(), dense);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn csr_empty_matrix() {
        let m = Csr::encode(2, 2, &[0.0; 4]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.decode(), vec![0.0; 4]);
    }

    #[test]
    fn runlength_roundtrip_no_overflow() {
        let dense = vec![0.0, 0.0, 5.0, 0.0, 7.0, 0.0, 0.0, 0.0];
        let rl = RunLength::encode(&dense, 4);
        assert_eq!(rl.decode(), dense);
    }

    #[test]
    fn runlength_handles_overflow_runs() {
        // A run of 9 zeros with 2-bit steps (max run 3) forces padding.
        let mut dense = vec![0.0f32; 10];
        dense[9] = 4.0;
        let rl = RunLength::encode(&dense, 2);
        assert_eq!(rl.decode(), dense);
        assert!(
            rl.stored_entries() > 1,
            "overflow should add padding entries"
        );
    }

    #[test]
    fn runlength_trailing_zeros_cost_nothing_extra() {
        let dense = vec![1.0, 0.0, 0.0];
        let rl = RunLength::encode(&dense, 4);
        assert_eq!(rl.stored_entries(), 1);
        assert_eq!(rl.decode(), dense);
    }

    #[test]
    fn sparsemap_beats_csr_for_ternary_values() {
        // The paper's motivating case: 2-bit ternary values, moderate
        // sparsity — per-element indices dwarf the values they locate.
        let dense: Vec<f32> = (0..1024)
            .map(|i| if i % 10 == 0 { 1.0 } else { 0.0 })
            .collect();
        let sm = crate::SparseMap::encode(&dense).size_bits(2);
        let csr = Csr::encode(1, 1024, &dense).size_bits(2);
        assert!(
            sm < csr,
            "SparseMap ({sm}) should beat CSR ({csr}) for ternary data"
        );
    }

    #[test]
    fn bits_for_formula() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
    }
}
