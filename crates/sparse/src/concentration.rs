//! The Concentration step (paper §4.2.3, Figure 6).
//!
//! Diluted chunks contain holes where coefficients were zero. Before the
//! survivors are fed to the reduction (adder) tree, the concentration
//! buffer folds chunks into rows of the tree's width and fills holes with
//! column-wise *look-ahead* (pull an element up from a later row of the
//! same column) and *look-aside* (pull from an adjacent column). Because
//! the sign has already been attached to each activation, elements may be
//! permuted arbitrarily.
//!
//! The adder tree consumes one row per cycle, so the number of drained rows
//! is the cycle cost of the weighted-accumulation stage; perfect
//! concentration reaches `ceil(matched / width)` cycles.

use std::collections::VecDeque;

/// A concentration buffer folding diluted slots into adder-tree rows.
///
/// The buffer recycles drained row storage into a free pool, so a
/// long-lived buffer (see [`ConcentrationBuffer::reset`]) reaches a
/// steady state where pushing and draining allocate nothing.
///
/// # Examples
///
/// ```
/// use escalate_sparse::ConcentrationBuffer;
///
/// let mut buf = ConcentrationBuffer::new(4, 2, 1);
/// buf.push_slots(&[Some(1.0), None, Some(2.0), None, None, Some(3.0)]);
/// let (sum, stats) = buf.drain_sum();
/// assert_eq!(sum, 6.0);
/// // 3 elements fit one row of width 4 after concentration.
/// assert_eq!(stats.rows_drained, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ConcentrationBuffer {
    width: usize,
    look_ahead: usize,
    look_aside: usize,
    rows: VecDeque<Vec<Option<f32>>>,
    /// Drained/emptied row storage awaiting reuse.
    free: Vec<Vec<Option<f32>>>,
    /// Column cursor for folding incoming slots.
    cursor: usize,
    stats: ConcentrationStats,
}

/// Counters describing the work done by a concentration buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConcentrationStats {
    /// Rows fed to the adder tree (one per cycle).
    pub rows_drained: usize,
    /// Total elements delivered.
    pub elements: usize,
    /// Holes filled by look-ahead moves.
    pub look_ahead_fills: usize,
    /// Holes filled by look-aside moves.
    pub look_aside_fills: usize,
    /// Barrier flushes (forced drains at position boundaries).
    pub barrier_flushes: usize,
}

impl ConcentrationStats {
    /// Occupancy of the drained rows in `[0, 1]`; 1.0 means every adder-tree
    /// input was used every cycle.
    pub fn occupancy(&self, width: usize) -> f64 {
        if self.rows_drained == 0 {
            return 1.0;
        }
        self.elements as f64 / (self.rows_drained * width) as f64
    }
}

impl ConcentrationBuffer {
    /// Creates a buffer feeding an adder tree of the given `width`.
    ///
    /// `look_ahead` is how many rows below the head a column may pull from;
    /// `look_aside` is how many neighbouring columns may donate an element.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize, look_ahead: usize, look_aside: usize) -> Self {
        assert!(width > 0, "adder tree width must be positive");
        ConcentrationBuffer {
            width,
            look_ahead,
            look_aside,
            rows: VecDeque::new(),
            free: Vec::new(),
            cursor: 0,
            stats: ConcentrationStats::default(),
        }
    }

    /// Clears buffered rows, the fold cursor, and the statistics, keeping
    /// the row storage for reuse. A reset buffer behaves exactly like a
    /// freshly constructed one with the same geometry.
    pub fn reset(&mut self) {
        while let Some(row) = self.rows.pop_front() {
            self.free.push(row);
        }
        self.cursor = 0;
        self.stats = ConcentrationStats::default();
    }

    /// Adder-tree width this buffer feeds.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Folds a diluted chunk's slots into the buffer, `width` per row.
    pub fn push_slots(&mut self, slots: &[Option<f32>]) {
        for &slot in slots {
            if self.cursor == 0 {
                self.open_row();
            }
            let last = self.rows.back_mut().expect("row was just pushed");
            last[self.cursor] = slot;
            self.cursor = (self.cursor + 1) % self.width;
        }
    }

    /// Appends a fresh all-hole row, recycling drained storage.
    fn open_row(&mut self) {
        let row = match self.free.pop() {
            Some(mut row) => {
                row.fill(None);
                row
            }
            None => vec![None; self.width],
        };
        self.rows.push_back(row);
    }

    /// Pushes `n` hole slots: bit-exact equivalent of
    /// `push_slots(&[None; n])`, but costs `O(n / width)` row operations
    /// instead of `O(n)` slot writes.
    ///
    /// This is the dilution word-skip entry point: when a chunk's
    /// activation/coefficient intersection is empty, every diluted slot is
    /// a hole, so callers can skip the dilution gathers entirely and
    /// account for the stream's holes here. The holes still occupy buffer
    /// slots — they shape row packing and the look-ahead donor distances —
    /// so the drain model stays identical to the full dilution path.
    pub fn push_holes(&mut self, mut n: usize) {
        while n > 0 {
            if self.cursor == 0 {
                self.open_row();
            }
            let take = (self.width - self.cursor).min(n);
            self.cursor = (self.cursor + take) % self.width;
            n -= take;
        }
    }

    /// Pushes `n` unit-valued slots where slot `j` is `Some(1.0)` when bit
    /// `j` of `mask` is set and a hole otherwise: the timing-model
    /// equivalent of diluting a chunk of `n` unit activations whose filter
    /// mask is `mask`, writing only the `popcount(mask)` survivors.
    ///
    /// The drained *statistics* are bit-exact with the full dilution path
    /// because concentration only reads the `Some`/`None` pattern; the
    /// drained *sum* may differ in sign (dilution attaches coefficient
    /// signs to survivors, this entry point pushes `+1.0`), so it is for
    /// cost models that discard the sum.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` or `mask` has bits at or above `n`.
    pub fn push_unit_mask(&mut self, mask: u64, n: usize) {
        assert!(n <= 64, "unit-mask chunks are at most 64 slots");
        let limit = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        assert_eq!(mask & !limit, 0, "filter mask has bits beyond the chunk");
        let mut j = 0usize;
        while j < n {
            if self.cursor == 0 {
                self.open_row();
            }
            let take = (self.width - self.cursor).min(n - j);
            let keep = if take >= 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            let mut bits = (mask >> j) & keep;
            if bits != 0 {
                let row = self.rows.back_mut().expect("row was just pushed");
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    row[self.cursor + b] = Some(1.0);
                }
            }
            self.cursor = (self.cursor + take) % self.width;
            j += take;
        }
    }

    /// Number of buffered rows not yet drained.
    pub fn pending_rows(&self) -> usize {
        self.rows.len()
    }

    /// Concentrates and drains every buffered row, returning the sum of all
    /// delivered elements (the weighted accumulation this stage computes)
    /// and the cumulative statistics.
    pub fn drain_sum(&mut self) -> (f32, ConcentrationStats) {
        let mut sum = 0.0f32;
        while let Some(row_sum) = self.drain_row() {
            sum += row_sum;
        }
        (sum, self.stats)
    }

    /// Forces a barrier flush: everything buffered is drained (counted as a
    /// flush) so elements of different output positions never mix.
    pub fn barrier(&mut self) -> f32 {
        if self.rows.is_empty() && self.cursor == 0 {
            return 0.0;
        }
        self.stats.barrier_flushes += 1;
        let (sum, _) = self.drain_sum();
        self.cursor = 0;
        sum
    }

    /// Cumulative statistics so far.
    pub fn stats(&self) -> ConcentrationStats {
        self.stats
    }

    /// Concentrates and drains exactly one adder-tree row, returning the
    /// partial sum of its elements, or `None` when the buffer is empty.
    /// This is the per-cycle operation of the hardware: one row enters the
    /// reduction tree per clock.
    pub fn drain_one(&mut self) -> Option<f32> {
        self.drain_row()
    }

    /// Concentrates the head row (fills holes via look-ahead/look-aside),
    /// removes it, and returns the sum of its elements. Returns `None`
    /// when empty.
    fn drain_row(&mut self) -> Option<f32> {
        if self.rows.is_empty() {
            self.cursor = 0;
            return None;
        }
        // Fill head-row holes.
        for col in 0..self.width {
            if self.rows[0][col].is_some() {
                continue;
            }
            if let Some((r, c, ahead)) = self.find_donor(col) {
                self.rows[0][col] = self.rows[r][c].take();
                if ahead {
                    self.stats.look_ahead_fills += 1;
                } else {
                    self.stats.look_aside_fills += 1;
                }
            }
        }
        let head = self.rows.pop_front().expect("buffer was non-empty");
        // Drop rows that have become entirely empty after donations,
        // recycling their storage.
        for _ in 0..self.rows.len() {
            let row = self.rows.pop_front().expect("iterating existing rows");
            if row.iter().any(Option::is_some) {
                self.rows.push_back(row);
            } else {
                self.free.push(row);
            }
        }
        if self.rows.is_empty() {
            self.cursor = 0;
        }
        let mut sum = 0.0f32;
        let mut count = 0usize;
        for &v in head.iter().flatten() {
            sum += v;
            count += 1;
        }
        self.free.push(head);
        if count == 0 {
            // An all-hole row costs no adder-tree cycle; recurse to the next.
            return self.drain_row();
        }
        self.stats.rows_drained += 1;
        self.stats.elements += count;
        Some(sum)
    }

    /// Finds a donor element for a hole in the head row at `col`:
    /// look-ahead first (same column, later rows), then look-aside
    /// (adjacent columns within `look_aside`, later rows). Returns
    /// `(row, col, was_look_ahead)`.
    fn find_donor(&self, col: usize) -> Option<(usize, usize, bool)> {
        let depth = self.rows.len().min(1 + self.look_ahead);
        for r in 1..depth {
            if self.rows[r][col].is_some() {
                return Some((r, col, true));
            }
        }
        for r in 1..depth {
            for d in 1..=self.look_aside {
                if col >= d && self.rows[r][col - d].is_some() {
                    return Some((r, col - d, false));
                }
                if col + d < self.width && self.rows[r][col + d].is_some() {
                    return Some((r, col + d, false));
                }
            }
        }
        None
    }
}

/// A bitmask twin of [`ConcentrationBuffer`] for cost-only streams: rows
/// are `u64` occupancy masks instead of `Vec<Option<f32>>`, so pushing and
/// draining are word operations with no per-slot storage. It models
/// exactly the unit-mask/hole streams the timing kernel feeds
/// ([`ConcentrationBuffer::push_unit_mask`] / `push_holes`) and returns
/// only what that kernel consumes: the drained-row count.
///
/// The drain semantics — per-column donor search order (look-ahead rows
/// first, then look-aside at distance 1..=`look_aside`, column−d before
/// column+d, per row), empty-row compaction after each head pop, all-hole
/// rows costing nothing — replicate [`ConcentrationBuffer::drain_sum`]
/// decision for decision, so `rows_drained` is bit-identical; the
/// differential tests below pin this over random push sequences.
///
/// Only widths up to 64 columns are supported (one word per row); callers
/// with wider adder trees fall back to [`ConcentrationBuffer`].
#[derive(Debug, Clone)]
pub struct MaskConcentration {
    width: usize,
    look_ahead: usize,
    look_aside: usize,
    /// Occupancy mask per row, oldest first (index 0 is the head).
    rows: Vec<u64>,
    /// Column cursor for folding incoming slots, as in the slot buffer.
    cursor: usize,
}

impl MaskConcentration {
    /// Creates a bitmask buffer feeding an adder tree of `width` columns.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    pub fn new(width: usize, look_ahead: usize, look_aside: usize) -> Self {
        assert!(width > 0, "adder tree width must be positive");
        assert!(width <= 64, "bitmask rows hold at most 64 columns");
        MaskConcentration {
            width,
            look_ahead,
            look_aside,
            rows: Vec::new(),
            cursor: 0,
        }
    }

    /// Adder-tree width this buffer feeds.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Clears buffered rows and the fold cursor, keeping the row storage.
    pub fn reset(&mut self) {
        self.rows.clear();
        self.cursor = 0;
    }

    /// Pushes `n` hole slots — the counterpart of
    /// [`ConcentrationBuffer::push_holes`].
    pub fn push_holes(&mut self, mut n: usize) {
        while n > 0 {
            if self.cursor == 0 {
                self.rows.push(0);
            }
            let take = (self.width - self.cursor).min(n);
            self.cursor = (self.cursor + take) % self.width;
            n -= take;
        }
    }

    /// Pushes `n` slots where slot `j` is occupied when bit `j` of `mask`
    /// is set — the counterpart of
    /// [`ConcentrationBuffer::push_unit_mask`], folding whole bit spans
    /// into the row words instead of writing slots.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` or `mask` has bits at or above `n`.
    pub fn push_mask(&mut self, mask: u64, n: usize) {
        assert!(n <= 64, "unit-mask chunks are at most 64 slots");
        let limit = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        assert_eq!(mask & !limit, 0, "filter mask has bits beyond the chunk");
        let mut j = 0usize;
        while j < n {
            if self.cursor == 0 {
                self.rows.push(0);
            }
            let take = (self.width - self.cursor).min(n - j);
            let keep = if take >= 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            let bits = (mask >> j) & keep;
            if bits != 0 {
                let last = self.rows.last_mut().expect("row was just pushed");
                *last |= bits << self.cursor;
            }
            self.cursor = (self.cursor + take) % self.width;
            j += take;
        }
    }

    /// Number of buffered rows not yet drained.
    pub fn pending_rows(&self) -> usize {
        self.rows.len()
    }

    /// Concentrates and drains every buffered row, returning how many rows
    /// the adder tree consumed — bit-identical to
    /// [`ConcentrationStats::rows_drained`] of a [`ConcentrationBuffer`]
    /// fed the same hole/mask stream.
    pub fn drain(&mut self) -> usize {
        let full = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let mut drained = 0usize;
        let mut start = 0usize; // head index into `rows` (drained prefix)
        while start < self.rows.len() {
            let live = &mut self.rows[start..];
            let depth = live.len().min(1 + self.look_ahead);
            if depth > 1 {
                // Donors available anywhere below the head? When the union
                // of the window rows is empty no hole can be filled, and
                // the whole fill loop is skipped.
                let mut avail = 0u64;
                for &r in &live[1..depth] {
                    avail |= r;
                }
                if avail != 0 {
                    // A hole is worth visiting only if some donor bit can
                    // reach it: same column, or within look-aside range.
                    let mut reach = avail;
                    for d in 1..=self.look_aside {
                        reach |= (avail << d) | (avail >> d);
                    }
                    let mut holes = !live[0] & full & reach;
                    'hole: while holes != 0 {
                        let col = holes.trailing_zeros() as usize;
                        holes &= holes - 1;
                        // Look-ahead: same column, nearest row first.
                        for r in 1..depth {
                            if live[r] >> col & 1 == 1 {
                                live[r] &= !(1u64 << col);
                                live[0] |= 1u64 << col;
                                continue 'hole;
                            }
                        }
                        // Look-aside: per row, distance 1..=ls, col−d
                        // before col+d — the slot buffer's exact order.
                        for r in 1..depth {
                            for d in 1..=self.look_aside {
                                if col >= d && live[r] >> (col - d) & 1 == 1 {
                                    live[r] &= !(1u64 << (col - d));
                                    live[0] |= 1u64 << col;
                                    continue 'hole;
                                }
                                if col + d < self.width && live[r] >> (col + d) & 1 == 1 {
                                    live[r] &= !(1u64 << (col + d));
                                    live[0] |= 1u64 << col;
                                    continue 'hole;
                                }
                            }
                        }
                    }
                }
            }
            let head = live[0];
            if head != 0 {
                drained += 1;
            }
            start += 1;
            // Compact rows drained empty by donations, exactly like the
            // slot buffer recycles all-None rows after each head pop.
            let mut w = start;
            for r in start..self.rows.len() {
                let row = self.rows[r];
                if row != 0 {
                    self.rows[w] = row;
                    w += 1;
                }
            }
            self.rows.truncate(w);
        }
        self.rows.clear();
        self.cursor = 0;
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_slots_drain_at_full_occupancy() {
        let mut buf = ConcentrationBuffer::new(4, 2, 1);
        let slots: Vec<Option<f32>> = (0..8).map(|i| Some(i as f32)).collect();
        buf.push_slots(&slots);
        let (sum, stats) = buf.drain_sum();
        assert_eq!(sum, 28.0);
        assert_eq!(stats.rows_drained, 2);
        assert_eq!(stats.occupancy(4), 1.0);
    }

    #[test]
    fn holes_are_filled_by_look_ahead() {
        let mut buf = ConcentrationBuffer::new(2, 4, 0);
        // Column 0 has holes in row 0; row 1 donates.
        buf.push_slots(&[None, Some(1.0), Some(2.0), Some(3.0)]);
        let (sum, stats) = buf.drain_sum();
        assert_eq!(sum, 6.0);
        assert!(stats.look_ahead_fills > 0);
        assert_eq!(stats.rows_drained, 2); // 3 elements, width 2 → 2 rows
    }

    #[test]
    fn look_aside_fills_when_column_is_empty() {
        let mut buf = ConcentrationBuffer::new(2, 4, 1);
        // Column 1 never gets an element except via look-aside.
        buf.push_slots(&[Some(1.0), None, Some(2.0), None, Some(3.0), None]);
        let (sum, stats) = buf.drain_sum();
        assert_eq!(sum, 6.0);
        assert!(
            stats.look_aside_fills > 0,
            "expected look-aside moves: {stats:?}"
        );
        // Perfect concentration: ceil(3/2) = 2 rows.
        assert_eq!(stats.rows_drained, 2);
    }

    #[test]
    fn no_moves_without_windows() {
        let mut buf = ConcentrationBuffer::new(2, 0, 0);
        buf.push_slots(&[Some(1.0), None, None, Some(2.0)]);
        let (sum, stats) = buf.drain_sum();
        assert_eq!(sum, 3.0);
        assert_eq!(stats.look_ahead_fills + stats.look_aside_fills, 0);
        assert_eq!(stats.rows_drained, 2); // one element per row: no packing
    }

    #[test]
    fn all_hole_rows_cost_nothing() {
        let mut buf = ConcentrationBuffer::new(4, 2, 1);
        buf.push_slots(&[None, None, None, None, Some(5.0)]);
        let (sum, stats) = buf.drain_sum();
        assert_eq!(sum, 5.0);
        assert_eq!(stats.rows_drained, 1);
    }

    #[test]
    fn barrier_flush_counts_and_resets() {
        let mut buf = ConcentrationBuffer::new(4, 2, 1);
        buf.push_slots(&[Some(1.0)]);
        let s1 = buf.barrier();
        assert_eq!(s1, 1.0);
        assert_eq!(buf.stats().barrier_flushes, 1);
        assert_eq!(buf.pending_rows(), 0);
        // A barrier on an empty buffer is free.
        assert_eq!(buf.barrier(), 0.0);
        assert_eq!(buf.stats().barrier_flushes, 1);
    }

    #[test]
    fn sum_is_preserved_regardless_of_windows() {
        let slots: Vec<Option<f32>> = (0..40)
            .map(|i| {
                if i % 3 == 0 {
                    Some((i as f32) * 0.5 - 3.0)
                } else {
                    None
                }
            })
            .collect();
        let expect: f32 = slots.iter().flatten().sum();
        for (la, ls) in [(0, 0), (1, 0), (4, 1), (8, 2)] {
            let mut buf = ConcentrationBuffer::new(8, la, ls);
            buf.push_slots(&slots);
            let (sum, _) = buf.drain_sum();
            assert!((sum - expect).abs() < 1e-5, "la={la} ls={ls}");
        }
    }

    #[test]
    fn reset_matches_fresh_buffer() {
        let slots: Vec<Option<f32>> = (0..20)
            .map(|i| if i % 3 == 0 { Some(i as f32) } else { None })
            .collect();
        let mut reused = ConcentrationBuffer::new(4, 2, 1);
        reused.push_slots(&slots);
        let first = reused.drain_sum();
        // Leave a partially-filled row behind before resetting.
        reused.push_slots(&[Some(9.0)]);
        reused.reset();
        reused.push_slots(&slots);
        let again = reused.drain_sum();
        let mut fresh = ConcentrationBuffer::new(4, 2, 1);
        fresh.push_slots(&slots);
        assert_eq!(again, fresh.drain_sum());
        assert_eq!(again, first);
    }

    #[test]
    fn push_holes_matches_push_slots() {
        for &(width, la, ls) in &[(4usize, 2usize, 1usize), (2, 0, 0), (16, 4, 1), (3, 1, 2)] {
            for &n in &[0usize, 1, 2, 3, 5, 16, 33, 64, 100] {
                let mut fast = ConcentrationBuffer::new(width, la, ls);
                let mut slow = ConcentrationBuffer::new(width, la, ls);
                // Interleave holes between real chunks so row structure and
                // donor distances are exercised, not just empty drains.
                let lead: Vec<Option<f32>> = (0..width + 1).map(|i| Some(i as f32)).collect();
                fast.push_slots(&lead);
                slow.push_slots(&lead);
                fast.push_holes(n);
                slow.push_slots(&vec![None; n]);
                let tail = [Some(7.0), None, Some(8.0)];
                fast.push_slots(&tail);
                slow.push_slots(&tail);
                assert_eq!(fast.pending_rows(), slow.pending_rows(), "w={width} n={n}");
                assert_eq!(fast.drain_sum(), slow.drain_sum(), "w={width} n={n}");
            }
        }
    }

    #[test]
    fn push_unit_mask_matches_push_slots_pattern() {
        for &(width, la, ls) in &[(4usize, 2usize, 1usize), (2, 1, 0), (16, 4, 1)] {
            for &(mask, n) in &[
                (0u64, 5usize),
                (0b1, 1),
                (0b1010_1100, 8),
                (u64::MAX, 64),
                (0x8000_0000_0000_0001, 64),
                (0x00FF_00FF, 32),
            ] {
                let mut fast = ConcentrationBuffer::new(width, la, ls);
                let mut slow = ConcentrationBuffer::new(width, la, ls);
                // Offset the cursor so chunks straddle row boundaries.
                fast.push_slots(&[Some(9.0)]);
                slow.push_slots(&[Some(9.0)]);
                fast.push_unit_mask(mask, n);
                let slots: Vec<Option<f32>> = (0..n)
                    .map(|j| if mask >> j & 1 == 1 { Some(1.0) } else { None })
                    .collect();
                slow.push_slots(&slots);
                let (_, fs) = fast.drain_sum();
                let (_, ss) = slow.drain_sum();
                assert_eq!(fs, ss, "w={width} mask={mask:#x} n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "beyond the chunk")]
    fn unit_mask_bits_beyond_chunk_panic() {
        let mut buf = ConcentrationBuffer::new(4, 2, 1);
        buf.push_unit_mask(0b100, 2);
    }

    /// Feeds the same hole/unit-mask stream to a slot buffer and a bitmask
    /// buffer and requires the drained-row counts to agree.
    fn diff_drain(width: usize, la: usize, ls: usize, ops: &[(u64, usize)]) {
        let mut slots = ConcentrationBuffer::new(width, la, ls);
        let mut bits = MaskConcentration::new(width, la, ls);
        for &(mask, n) in ops {
            if mask == 0 {
                slots.push_holes(n);
                bits.push_holes(n);
            } else {
                slots.push_unit_mask(mask, n);
                bits.push_mask(mask, n);
            }
        }
        let before = slots.stats().rows_drained;
        let (_, stats) = slots.drain_sum();
        assert_eq!(
            bits.drain(),
            stats.rows_drained - before,
            "w={width} la={la} ls={ls} ops={ops:?}"
        );
    }

    #[test]
    fn bitmask_buffer_matches_slot_buffer_on_patterns() {
        diff_drain(16, 4, 1, &[(0b1011, 4), (0, 7), (0xFFFF, 16), (0, 40)]);
        diff_drain(4, 2, 1, &[(0, 3), (1, 1), (0, 9), (0b11, 2)]);
        diff_drain(1, 0, 0, &[(1, 1), (0, 5), (1, 1)]);
        diff_drain(64, 8, 2, &[(u64::MAX, 64), (0, 64), (0xF0F0, 16)]);
        diff_drain(16, 0, 3, &[(0x8001, 16), (0, 2), (0x7, 3)]);
        // All-hole stream: zero rows either way.
        diff_drain(8, 4, 1, &[(0, 100)]);
    }

    #[test]
    fn bitmask_buffer_matches_slot_buffer_randomized() {
        // Deterministic LCG so the sweep needs no rand dependency.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for trial in 0..300 {
            let width = 1 + (next() % 64) as usize;
            let la = (next() % 6) as usize;
            let ls = (next() % 3) as usize;
            let ops: Vec<(u64, usize)> = (0..(1 + next() % 12))
                .map(|_| {
                    let n = 1 + (next() % 64) as usize;
                    let limit = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
                    // Sparse-ish masks (self-AND) with occasional all-hole runs.
                    let mask = if next() % 4 == 0 {
                        0
                    } else {
                        next() & next() & limit
                    };
                    (mask, n)
                })
                .collect();
            let _ = trial;
            diff_drain(width, la, ls, &ops);
        }
    }

    #[test]
    fn bitmask_buffer_reset_and_reuse_matches_fresh() {
        let ops = [(0b1010u64, 4usize), (0, 6), (0xFF, 8)];
        let mut reused = MaskConcentration::new(6, 3, 1);
        reused.push_mask(0x1, 2);
        reused.reset();
        for &(mask, n) in &ops {
            if mask == 0 {
                reused.push_holes(n);
            } else {
                reused.push_mask(mask, n);
            }
        }
        let mut fresh = MaskConcentration::new(6, 3, 1);
        for &(mask, n) in &ops {
            if mask == 0 {
                fresh.push_holes(n);
            } else {
                fresh.push_mask(mask, n);
            }
        }
        assert_eq!(reused.pending_rows(), fresh.pending_rows());
        assert_eq!(reused.drain(), fresh.drain());
        // Drained buffers are empty and reusable without reset.
        assert_eq!(reused.pending_rows(), 0);
        reused.push_mask(0b11, 2);
        assert_eq!(reused.drain(), 1);
    }

    #[test]
    #[should_panic(expected = "at most 64 columns")]
    fn bitmask_buffer_rejects_wide_trees() {
        let _ = MaskConcentration::new(65, 4, 1);
    }

    #[test]
    fn deeper_lookahead_never_hurts_cycles() {
        let slots: Vec<Option<f32>> = (0..64)
            .map(|i| {
                if (i * 7) % 5 < 2 {
                    Some(i as f32)
                } else {
                    None
                }
            })
            .collect();
        let mut last = usize::MAX;
        for la in [0usize, 1, 2, 4, 8] {
            let mut buf = ConcentrationBuffer::new(4, la, 1);
            buf.push_slots(&slots);
            let (_, stats) = buf.drain_sum();
            assert!(stats.rows_drained <= last, "look-ahead {la} regressed");
            last = stats.rows_drained;
        }
    }
}
