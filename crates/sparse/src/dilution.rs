//! The Dilution step (paper §4.2.2, Figure 4(c)).
//!
//! Dilution matches a chunk of compressed activations against the ternary
//! coefficients of one accumulation, and filters out activations whose
//! coefficient is zero. Filtering is done with two bit-gather operations:
//! one producing the *filter mask* (which compressed activations survive)
//! and one producing the *sign mask* (the sign of each surviving ternary
//! coefficient). Because activations are wide (8/16 bits) and shuffling
//! them is expensive, the survivors keep their "holes" — compacting them is
//! deferred to the Concentration step.

use crate::bitgather::{gather_bits, gather_bits_butterfly};

/// One chunk of compressed activations and the coefficients they must be
/// matched against.
///
/// Both sparse maps cover the same `width ≤ 64` dense positions of one
/// (input-channel, m) stretch; values are stored compressed in position
/// order, exactly as the SparseMap encoding delivers them.
#[derive(Debug, Clone)]
pub struct DilutionInput<'a> {
    /// Nonzero activation values, in position order.
    pub act_values: &'a [f32],
    /// Activation sparse-map bits (bit `i` set ⇒ position `i` nonzero).
    pub act_map: u64,
    /// Signs of the nonzero ternary coefficients, in position order
    /// (`true` = negative).
    pub coef_signs: &'a [bool],
    /// Coefficient sparse-map bits.
    pub coef_map: u64,
    /// Number of dense positions covered (≤ 64).
    pub width: usize,
}

/// Result of diluting one chunk: the filtered activations with holes, plus
/// the masks and the switching activity of the gather networks.
#[derive(Debug, Clone, PartialEq)]
pub struct DilutedChunk {
    /// One slot per incoming nonzero activation: `Some(signed value)` when
    /// the matching coefficient is nonzero, `None` (a hole) otherwise.
    pub slots: Vec<Option<f32>>,
    /// Number of surviving (matched) activations.
    pub matched: usize,
    /// Filter mask over compressed activations (bit `i` ⇒ `slots[i]` kept).
    pub filter_mask: u64,
    /// Sign mask over the surviving activations, in order.
    pub sign_mask: u64,
    /// Total gather-network switching activity (for the energy model).
    pub gather_activity: u32,
}

/// The scalar results of diluting one chunk — everything [`DilutedChunk`]
/// carries except the slot vector, which [`dilute_into`] writes into a
/// caller-provided buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DilutionOutcome {
    /// Number of surviving (matched) activations.
    pub matched: usize,
    /// Filter mask over compressed activations (bit `i` ⇒ `slots[i]` kept).
    pub filter_mask: u64,
    /// Sign mask over the surviving activations, in order.
    pub sign_mask: u64,
    /// Total gather-network switching activity (for the energy model).
    pub gather_activity: u32,
}

/// Performs the dilution of one chunk.
///
/// # Panics
///
/// Panics if `width > 64`, if the popcount of a map disagrees with the
/// number of provided values, or if map bits exist above `width`.
///
/// # Examples
///
/// ```
/// use escalate_sparse::{dilute, DilutionInput};
///
/// // Positions:        0    1    2    3
/// // Activations:     1.0   0   2.0  3.0   (map 0b1101)
/// // Coefficients:    +1   -1    0   -1    (map 0b1011, signs of nonzeros)
/// let out = dilute(&DilutionInput {
///     act_values: &[1.0, 2.0, 3.0],
///     act_map: 0b1101,
///     coef_signs: &[false, true, true],
///     coef_map: 0b1011,
///     width: 4,
/// });
/// // Position 0 matches (+1.0), position 2 has no coefficient (hole),
/// // position 3 matches with a negative coefficient (-3.0).
/// assert_eq!(out.slots, vec![Some(1.0), None, Some(-3.0)]);
/// ```
pub fn dilute(input: &DilutionInput<'_>) -> DilutedChunk {
    let mut slots = Vec::with_capacity(input.act_values.len());
    let out = dilute_into(input, &mut slots);
    DilutedChunk {
        slots,
        matched: out.matched,
        filter_mask: out.filter_mask,
        sign_mask: out.sign_mask,
        gather_activity: out.gather_activity,
    }
}

/// Allocation-free dilution: like [`dilute`], but writes the slot stream
/// into `slots` (cleared first) so hot loops can reuse one buffer across
/// chunks. Returns the scalar outcome.
///
/// # Panics
///
/// Same contract as [`dilute`].
pub fn dilute_into(input: &DilutionInput<'_>, slots: &mut Vec<Option<f32>>) -> DilutionOutcome {
    assert!(
        input.width <= 64,
        "dilution chunks are at most 64 positions"
    );
    let limit = if input.width == 64 {
        u64::MAX
    } else {
        (1u64 << input.width) - 1
    };
    assert_eq!(
        input.act_map & !limit,
        0,
        "activation map has bits beyond width"
    );
    assert_eq!(
        input.coef_map & !limit,
        0,
        "coefficient map has bits beyond width"
    );
    assert_eq!(
        input.act_map.count_ones() as usize,
        input.act_values.len(),
        "activation map popcount must equal value count"
    );
    assert_eq!(
        input.coef_map.count_ones() as usize,
        input.coef_signs.len(),
        "coefficient map popcount must equal sign count"
    );

    // Intersection of nonzero positions.
    let inter = input.act_map & input.coef_map;

    // Filter mask: for each compressed activation, does its coefficient
    // survive? (gather the intersection with the activation map)
    let filt = gather_bits_butterfly(inter, input.act_map);
    // Coefficient mask: for each compressed coefficient, does its
    // activation survive?
    let coef = gather_bits_butterfly(inter, input.coef_map);

    // Surviving coefficient signs, in order: pack the compressed signs
    // into a word and gather the survivors — the element-level gather is
    // just a bit gather once the signs are 1 bit each.
    let mut packed_signs = 0u64;
    for (i, &neg) in input.coef_signs.iter().enumerate() {
        if neg {
            packed_signs |= 1u64 << i;
        }
    }
    let sign_mask = gather_bits(packed_signs, coef.gathered);

    // Apply filter + sign to the activation chunk, keeping holes.
    slots.clear();
    let mut matched = 0usize;
    for (i, &v) in input.act_values.iter().enumerate() {
        if filt.gathered >> i & 1 == 1 {
            let neg = sign_mask >> matched & 1 == 1;
            slots.push(Some(if neg { -v } else { v }));
            matched += 1;
        } else {
            slots.push(None);
        }
    }

    DilutionOutcome {
        matched,
        filter_mask: filt.gathered,
        sign_mask,
        gather_activity: filt.switch_activity() + coef.switch_activity(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn maps_from_dense(act: &[f32], coef: &[i8]) -> (Vec<f32>, u64, Vec<bool>, u64) {
        let mut av = Vec::new();
        let mut am = 0u64;
        for (i, &a) in act.iter().enumerate() {
            if a != 0.0 {
                av.push(a);
                am |= 1 << i;
            }
        }
        let mut cs = Vec::new();
        let mut cm = 0u64;
        for (i, &c) in coef.iter().enumerate() {
            if c != 0 {
                cs.push(c < 0);
                cm |= 1 << i;
            }
        }
        (av, am, cs, cm)
    }

    /// Ground truth: the dense product act[i] * sign(coef[i]) restricted to
    /// positions where both are nonzero.
    fn dense_reference(act: &[f32], coef: &[i8]) -> Vec<f32> {
        act.iter()
            .zip(coef)
            .filter(|&(&a, &c)| a != 0.0 && c != 0)
            .map(|(&a, &c)| if c < 0 { -a } else { a })
            .collect()
    }

    fn run(act: &[f32], coef: &[i8]) -> DilutedChunk {
        let (av, am, cs, cm) = maps_from_dense(act, coef);
        dilute(&DilutionInput {
            act_values: &av,
            act_map: am,
            coef_signs: &cs,
            coef_map: cm,
            width: act.len(),
        })
    }

    #[test]
    fn matches_dense_reference_simple() {
        let act = [1.0, 0.0, 2.0, 3.0, 0.0, 4.0];
        let coef = [1i8, -1, 0, -1, 1, 1];
        let out = run(&act, &coef);
        let survivors: Vec<f32> = out.slots.iter().flatten().copied().collect();
        assert_eq!(survivors, dense_reference(&act, &coef));
    }

    #[test]
    fn empty_intersection_yields_all_holes() {
        let act = [1.0, 0.0, 2.0, 0.0];
        let coef = [0i8, 1, 0, -1];
        let out = run(&act, &coef);
        assert_eq!(out.matched, 0);
        assert!(out.slots.iter().all(Option::is_none));
    }

    #[test]
    fn full_overlap_keeps_everything() {
        let act = [1.0, 2.0, 3.0];
        let coef = [1i8, 1, -1];
        let out = run(&act, &coef);
        assert_eq!(out.matched, 3);
        assert_eq!(out.slots, vec![Some(1.0), Some(2.0), Some(-3.0)]);
    }

    #[test]
    fn signs_align_with_surviving_positions() {
        // Coefficient at position 0 is negative but its activation is zero;
        // the sign must NOT leak onto the survivor at position 2.
        let act = [0.0, 0.0, 5.0];
        let coef = [-1i8, 0, 1];
        let out = run(&act, &coef);
        assert_eq!(out.slots, vec![Some(5.0)]);
    }

    #[test]
    fn holes_preserve_compressed_positions() {
        let act = [1.0, 2.0, 3.0, 4.0];
        let coef = [1i8, 0, 0, -1];
        let out = run(&act, &coef);
        assert_eq!(out.slots, vec![Some(1.0), None, None, Some(-4.0)]);
        assert_eq!(out.filter_mask, 0b1001);
    }

    #[test]
    fn exhaustive_small_widths() {
        // Exhaustively check all activation/coefficient patterns at width 5.
        for am_bits in 0u32..32 {
            for cm_bits in 0u32..32 {
                let act: Vec<f32> = (0..5)
                    .map(|i| {
                        if am_bits >> i & 1 == 1 {
                            (i + 1) as f32
                        } else {
                            0.0
                        }
                    })
                    .collect();
                let coef: Vec<i8> = (0..5)
                    .map(|i| {
                        if cm_bits >> i & 1 == 1 {
                            if i % 2 == 0 {
                                1
                            } else {
                                -1
                            }
                        } else {
                            0
                        }
                    })
                    .collect();
                let out = run(&act, &coef);
                let survivors: Vec<f32> = out.slots.iter().flatten().copied().collect();
                assert_eq!(
                    survivors,
                    dense_reference(&act, &coef),
                    "am={am_bits:b} cm={cm_bits:b}"
                );
            }
        }
    }

    #[test]
    fn dilute_into_reused_buffer_matches_dilute() {
        let cases: [(&[f32], &[i8]); 3] = [
            (&[1.0, 0.0, 2.0, 3.0, 0.0, 4.0], &[1, -1, 0, -1, 1, 1]),
            (&[0.0, 0.0, 5.0], &[-1, 0, 1]),
            (&[1.0, 2.0, 3.0, 4.0], &[1, 0, 0, -1]),
        ];
        let mut slots = vec![Some(99.0); 7]; // deliberately dirty
        for (act, coef) in cases {
            let (av, am, cs, cm) = maps_from_dense(act, coef);
            let input = DilutionInput {
                act_values: &av,
                act_map: am,
                coef_signs: &cs,
                coef_map: cm,
                width: act.len(),
            };
            let expect = dilute(&input);
            let out = dilute_into(&input, &mut slots);
            assert_eq!(slots, expect.slots);
            assert_eq!(out.matched, expect.matched);
            assert_eq!(out.filter_mask, expect.filter_mask);
            assert_eq!(out.sign_mask, expect.sign_mask);
            assert_eq!(out.gather_activity, expect.gather_activity);
        }
    }

    #[test]
    #[should_panic(expected = "popcount")]
    fn mismatched_values_panic() {
        let _ = dilute(&DilutionInput {
            act_values: &[1.0],
            act_map: 0b11,
            coef_signs: &[],
            coef_map: 0,
            width: 2,
        });
    }
}
