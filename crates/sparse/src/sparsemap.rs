//! SparseMap bitmask encoding and its 2-level variant (paper §4.2.1).
//!
//! SparseMap stores a dense bit mask (one bit per position, set when the
//! position is nonzero) plus a packed array of the nonzero values. Compared
//! with CSR/CSC index arrays this is far cheaper for ternary coefficients,
//! where one index would cost more bits than several values.
//!
//! The 2-level variant splits the mask into 16-bit chunks and stores one
//! presence bit per chunk; all-zero chunks store neither mask nor values,
//! which keeps the encoding compact at very high sparsity (ESCALATE prunes
//! up to 99.4% of coefficients).

/// Size in bits of one mask chunk in the 2-level encoding.
pub const CHUNK_BITS: usize = 16;

/// A flat SparseMap encoding of an `f32` vector: a dense bit mask plus the
/// packed nonzero values.
///
/// # Examples
///
/// ```
/// use escalate_sparse::SparseMap;
///
/// let m = SparseMap::encode(&[0.0, 1.5, 0.0, -2.0]);
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.decode(), vec![0.0, 1.5, 0.0, -2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMap {
    len: usize,
    mask: Vec<u64>,
    values: Vec<f32>,
}

impl SparseMap {
    /// Encodes a dense slice.
    pub fn encode(dense: &[f32]) -> Self {
        let len = dense.len();
        let mut mask = vec![0u64; len.div_ceil(64)];
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                mask[i / 64] |= 1u64 << (i % 64);
                values.push(v);
            }
        }
        SparseMap { len, mask, values }
    }

    /// Number of encoded positions (dense length).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the encoded vector has zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored nonzero values.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The packed nonzero values in position order.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Whether position `i` is nonzero.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of range");
        self.mask[i / 64] >> (i % 64) & 1 == 1
    }

    /// The raw mask words (little-endian bit order within each word).
    pub fn mask_words(&self) -> &[u64] {
        &self.mask
    }

    /// Reconstructs the dense vector.
    pub fn decode(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        let mut vi = 0;
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.len {
            if self.bit(i) {
                out[i] = self.values[vi];
                vi += 1;
            }
        }
        out
    }

    /// Storage cost in bits given a per-value precision.
    ///
    /// One mask bit per position plus `value_bits` per nonzero.
    pub fn size_bits(&self, value_bits: usize) -> usize {
        self.len + self.nnz() * value_bits
    }
}

/// The 2-level SparseMap: 16-bit mask chunks gated by per-chunk presence
/// bits; all-zero chunks are not stored at all.
///
/// # Examples
///
/// ```
/// use escalate_sparse::TwoLevelSparseMap;
///
/// let mut dense = vec![0.0f32; 64];
/// dense[3] = 1.0;
/// let m = TwoLevelSparseMap::encode(&dense);
/// // 4 chunks of 16 bits; only one is non-empty.
/// assert_eq!(m.stored_chunks(), 1);
/// assert_eq!(m.decode(), dense);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevelSparseMap {
    len: usize,
    /// One presence bit per 16-bit chunk.
    presence: Vec<bool>,
    /// Masks of the present chunks, in order.
    chunk_masks: Vec<u16>,
    values: Vec<f32>,
}

impl TwoLevelSparseMap {
    /// Encodes a dense slice.
    pub fn encode(dense: &[f32]) -> Self {
        let len = dense.len();
        let n_chunks = len.div_ceil(CHUNK_BITS);
        let mut presence = Vec::with_capacity(n_chunks);
        let mut chunk_masks = Vec::new();
        let mut values = Vec::new();
        for chunk in 0..n_chunks {
            let start = chunk * CHUNK_BITS;
            let end = (start + CHUNK_BITS).min(len);
            let mut mask: u16 = 0;
            for (bit, &v) in dense[start..end].iter().enumerate() {
                if v != 0.0 {
                    mask |= 1u16 << bit;
                }
            }
            presence.push(mask != 0);
            if mask != 0 {
                chunk_masks.push(mask);
                for &v in &dense[start..end] {
                    if v != 0.0 {
                        values.push(v);
                    }
                }
            }
        }
        TwoLevelSparseMap {
            len,
            presence,
            chunk_masks,
            values,
        }
    }

    /// Number of encoded positions (dense length).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the encoded vector has zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored nonzero values.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of chunks that are stored (non-empty).
    pub fn stored_chunks(&self) -> usize {
        self.chunk_masks.len()
    }

    /// Total number of chunks (stored or elided).
    pub fn total_chunks(&self) -> usize {
        self.presence.len()
    }

    /// Reconstructs the dense vector.
    pub fn decode(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        let mut ci = 0;
        let mut vi = 0;
        for (chunk, &present) in self.presence.iter().enumerate() {
            if !present {
                continue;
            }
            let mask = self.chunk_masks[ci];
            ci += 1;
            let start = chunk * CHUNK_BITS;
            for bit in 0..CHUNK_BITS {
                if mask >> bit & 1 == 1 {
                    out[start + bit] = self.values[vi];
                    vi += 1;
                }
            }
        }
        out
    }

    /// Storage cost in bits: one presence bit per chunk, 16 mask bits per
    /// stored chunk, and `value_bits` per nonzero.
    pub fn size_bits(&self, value_bits: usize) -> usize {
        self.total_chunks() + self.stored_chunks() * CHUNK_BITS + self.nnz() * value_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f32> {
        let mut v = vec![0.0f32; 100];
        for i in (0..100).step_by(7) {
            v[i] = i as f32 + 1.0;
        }
        v[99] = -5.0;
        v
    }

    #[test]
    fn flat_roundtrip() {
        let d = sample();
        assert_eq!(SparseMap::encode(&d).decode(), d);
    }

    #[test]
    fn flat_all_zero() {
        let m = SparseMap::encode(&[0.0; 10]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.decode(), vec![0.0; 10]);
        assert_eq!(m.size_bits(8), 10);
    }

    #[test]
    fn flat_dense_vector() {
        let d = vec![1.0f32; 5];
        let m = SparseMap::encode(&d);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.size_bits(2), 5 + 10);
    }

    #[test]
    fn flat_bits_match_positions() {
        let d = sample();
        let m = SparseMap::encode(&d);
        for (i, &v) in d.iter().enumerate() {
            assert_eq!(m.bit(i), v != 0.0);
        }
    }

    #[test]
    fn two_level_roundtrip() {
        let d = sample();
        assert_eq!(TwoLevelSparseMap::encode(&d).decode(), d);
    }

    #[test]
    fn two_level_elides_empty_chunks() {
        let mut d = vec![0.0f32; 160];
        d[0] = 1.0;
        d[150] = 2.0;
        let m = TwoLevelSparseMap::encode(&d);
        assert_eq!(m.total_chunks(), 10);
        assert_eq!(m.stored_chunks(), 2);
        assert_eq!(m.decode(), d);
    }

    #[test]
    fn two_level_beats_flat_at_high_sparsity() {
        let mut d = vec![0.0f32; 1600];
        d[17] = 1.0;
        let two = TwoLevelSparseMap::encode(&d).size_bits(2);
        let flat = SparseMap::encode(&d).size_bits(2);
        assert!(
            two < flat,
            "2-level ({two}) should beat flat ({flat}) at 99.9% sparsity"
        );
    }

    #[test]
    fn flat_beats_two_level_at_low_sparsity() {
        let d: Vec<f32> = (0..1600)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let two = TwoLevelSparseMap::encode(&d).size_bits(2);
        let flat = SparseMap::encode(&d).size_bits(2);
        assert!(
            flat < two,
            "flat ({flat}) should beat 2-level ({two}) at 50% sparsity"
        );
    }

    #[test]
    fn two_level_partial_final_chunk() {
        let mut d = vec![0.0f32; 20]; // 2 chunks, second partial
        d[18] = 3.0;
        let m = TwoLevelSparseMap::encode(&d);
        assert_eq!(m.total_chunks(), 2);
        assert_eq!(m.stored_chunks(), 1);
        assert_eq!(m.decode(), d);
    }

    #[test]
    fn size_accounting_formulas() {
        let d = sample();
        let m = SparseMap::encode(&d);
        assert_eq!(m.size_bits(8), 100 + m.nnz() * 8);
        let t = TwoLevelSparseMap::encode(&d);
        assert_eq!(
            t.size_bits(8),
            t.total_chunks() + t.stored_chunks() * 16 + t.nnz() * 8
        );
    }
}
