//! Property-based tests for the sparse encodings and hardware primitives.

use escalate_sparse::csr::{Csr, RunLength};
use escalate_sparse::{
    dilute, gather_bits, gather_bits_butterfly, ConcentrationBuffer, DilutionInput, SparseMap,
    TwoLevelSparseMap,
};
use proptest::prelude::*;

/// Strategy: a sparse f32 vector with controllable density.
fn sparse_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(0.0f32),
            1 => (-100i32..100).prop_map(|v| if v == 0 { 1.0 } else { v as f32 }),
        ],
        0..max_len,
    )
}

proptest! {
    #[test]
    fn sparsemap_roundtrips(v in sparse_vec(300)) {
        prop_assert_eq!(SparseMap::encode(&v).decode(), v);
    }

    #[test]
    fn two_level_roundtrips(v in sparse_vec(300)) {
        prop_assert_eq!(TwoLevelSparseMap::encode(&v).decode(), v);
    }

    #[test]
    fn encodings_agree_on_nnz(v in sparse_vec(300)) {
        let flat = SparseMap::encode(&v);
        let two = TwoLevelSparseMap::encode(&v);
        prop_assert_eq!(flat.nnz(), two.nnz());
        prop_assert_eq!(flat.nnz(), v.iter().filter(|&&x| x != 0.0).count());
    }

    #[test]
    fn csr_roundtrips(v in sparse_vec(256), cols in 1usize..16) {
        let rows = v.len() / cols;
        let v = &v[..rows * cols];
        prop_assert_eq!(Csr::encode(rows, cols, v).decode(), v.to_vec());
    }

    #[test]
    fn runlength_roundtrips(v in sparse_vec(300), step_bits in 1usize..8) {
        prop_assert_eq!(RunLength::encode(&v, step_bits).decode(), v);
    }

    #[test]
    fn butterfly_gather_matches_reference(data: u64, mask: u64) {
        prop_assert_eq!(gather_bits_butterfly(data, mask).gathered, gather_bits(data, mask));
    }

    #[test]
    fn gather_result_has_no_high_bits(data: u64, mask: u64) {
        let g = gather_bits(data, mask);
        let pc = mask.count_ones();
        if pc < 64 {
            prop_assert_eq!(g >> pc, 0);
        }
    }

    /// Dilution must equal the dense reference: keep sign-extended
    /// activations exactly where both operands are nonzero.
    #[test]
    fn dilution_matches_dense_reference(
        pattern in prop::collection::vec((0u8..4, -1i8..2), 1..64),
    ) {
        let act: Vec<f32> = pattern.iter().map(|&(a, _)| if a == 0 { 0.0 } else { a as f32 }).collect();
        let coef: Vec<i8> = pattern.iter().map(|&(_, c)| c).collect();
        let mut av = Vec::new();
        let mut am = 0u64;
        for (i, &a) in act.iter().enumerate() {
            if a != 0.0 { av.push(a); am |= 1 << i; }
        }
        let mut cs = Vec::new();
        let mut cm = 0u64;
        for (i, &c) in coef.iter().enumerate() {
            if c != 0 { cs.push(c < 0); cm |= 1 << i; }
        }
        let out = dilute(&DilutionInput {
            act_values: &av, act_map: am, coef_signs: &cs, coef_map: cm, width: act.len(),
        });
        let got: Vec<f32> = out.slots.iter().flatten().copied().collect();
        let expect: Vec<f32> = act.iter().zip(&coef)
            .filter(|&(&a, &c)| a != 0.0 && c != 0)
            .map(|(&a, &c)| if c < 0 { -a } else { a })
            .collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(out.matched, (am & cm).count_ones() as usize);
    }

    /// Concentration preserves the accumulated sum and never does better
    /// than perfect packing.
    #[test]
    fn concentration_conserves_sum_and_respects_lower_bound(
        slots in prop::collection::vec(
            prop_oneof![2 => Just(None), 1 => (1i32..50).prop_map(|v| Some(v as f32))],
            0..200,
        ),
        width in 1usize..17,
        la in 0usize..8,
        ls in 0usize..3,
    ) {
        let mut buf = ConcentrationBuffer::new(width, la, ls);
        buf.push_slots(&slots);
        let (sum, stats) = buf.drain_sum();
        let expect: f32 = slots.iter().flatten().sum();
        prop_assert!((sum - expect).abs() < 1e-3);
        let n = slots.iter().flatten().count();
        prop_assert_eq!(stats.elements, n);
        prop_assert!(stats.rows_drained >= n.div_ceil(width));
        // No packing scheme can beat one row per `width` elements, and the
        // unpacked upper bound is one row per chunk row.
        prop_assert!(stats.rows_drained <= slots.len().div_ceil(width).max(n));
    }

    /// The Figure 4(a) activation layout round-trips any feature map at
    /// any slice count.
    #[test]
    fn actcodec_roundtrips(
        data in prop::collection::vec(
            prop_oneof![2 => Just(0.0f32), 1 => (1i32..100).prop_map(|v| v as f32)],
            1..400,
        ),
        c in 1usize..8,
        l in 1usize..6,
    ) {
        use escalate_sparse::actcodec::{decode_feature_map, encode_feature_map};
        prop_assume!(data.len() >= c);
        let y = 4usize;
        let x = data.len() / (c * y);
        prop_assume!(x >= 1);
        let data = &data[..c * x * y];
        let streams = encode_feature_map(data, c, x, y, l);
        prop_assert_eq!(decode_feature_map(&streams, c, x, y), data.to_vec());
        // Stored values across streams equal the nonzero count.
        let nnz = data.iter().filter(|&&v| v != 0.0).count();
        let stored: usize = streams.iter().map(|s| s.values.len()).sum();
        prop_assert_eq!(stored, nnz);
    }

    /// The rolling-mask pipeline reassembles exactly the filter mask the
    /// one-shot dilution computes, for any map pattern and chunk width.
    #[test]
    fn mask_pipeline_matches_oneshot_dilution(
        words in prop::collection::vec((any::<u64>(), any::<u64>()), 1..4),
        chunk in 1usize..33,
    ) {
        use escalate_sparse::maskpipe::{reference_filter_mask, MaskPipeline, PositionMaps};
        let maps = PositionMaps {
            act_map: words.iter().map(|&(a, _)| a).collect(),
            coef_map: words.iter().map(|&(_, c)| c).collect(),
            width: words.len() * 64,
        };
        let mut pipe = MaskPipeline::new();
        let windows = pipe.position_windows(&maps, chunk);
        let mut bits = Vec::new();
        for w in &windows {
            for i in 0..w.len {
                bits.push(w.filter >> i & 1 == 1);
            }
        }
        prop_assert_eq!(bits, reference_filter_mask(&maps));
        // Exactly one barrier, on the last window (when any window exists).
        let barriers = windows.iter().filter(|w| w.barrier).count();
        if windows.is_empty() {
            prop_assert_eq!(barriers, 0);
        } else {
            prop_assert_eq!(barriers, 1);
            prop_assert!(windows.last().unwrap().barrier);
        }
        // One mask-generation pass per stored word.
        prop_assert_eq!(pipe.passes(), words.len() as u64);
    }

    /// SparseMap with 2-bit ternary values beats CSR for any vector with at
    /// least ~12.5% density (the paper's storage argument: one 10-bit index
    /// costs more than a mask bit per position once nonzeros are common).
    #[test]
    fn sparsemap_storage_dominates_csr_for_ternary(
        v in prop::collection::vec(
            prop_oneof![4 => Just(0.0f32), 1 => Just(1.0f32)],
            512..1024,
        ),
    ) {
        prop_assume!(v.iter().filter(|&&x| x != 0.0).count() * 8 >= v.len());
        let sm = SparseMap::encode(&v).size_bits(2);
        let csr = Csr::encode(1, v.len(), &v).size_bits(2);
        prop_assert!(sm <= csr, "sm={sm} csr={csr}");
    }
}
