//! Dense N-dimensional row-major tensor of `f32` values.

/// A dense N-dimensional tensor stored in row-major (C) order.
///
/// The last axis is contiguous. Shapes are dynamic; all indexing is
/// bounds-checked in debug builds through the standard slice operations.
///
/// # Examples
///
/// ```
/// use escalate_tensor::Tensor;
///
/// let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 3 + idx[1]) as f32);
/// assert_eq!(t.get(&[1, 2]), 5.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the number of elements overflows `usize`.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![1.0; len],
        }
    }

    /// Creates a tensor by calling `f` with each multi-dimensional index in
    /// row-major order.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let len: usize = shape.iter().product();
        let mut idx = vec![0usize; shape.len()];
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(f(&idx));
            for axis in (0..shape.len()).rev() {
                idx[axis] += 1;
                if idx[axis] < shape[axis] {
                    break;
                }
                idx[axis] = 0;
            }
        }
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Wraps an existing buffer as a tensor.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let len: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            len,
            "buffer length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A flat view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// A mutable flat view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Computes the flat offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len()` differs from the rank or any coordinate is out
    /// of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "rank mismatch");
        let mut off = 0usize;
        for (axis, (&i, &dim)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(
                i < dim,
                "index {i} out of bounds for axis {axis} (size {dim})"
            );
            off = off * dim + i;
        }
        off
    }

    /// Reads the element at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds (see [`Tensor::offset`]).
    pub fn get(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Writes the element at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds (see [`Tensor::offset`]).
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data reinterpreted under a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different number of elements.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let len: usize = shape.iter().product();
        assert_eq!(
            len,
            self.data.len(),
            "reshape to {shape:?} changes element count"
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies the ReLU nonlinearity (used to create realistic activation
    /// sparsity in synthetic feature maps).
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add requires identical shapes");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// In-place scaled accumulation: `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy requires identical shapes");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| alpha * x)
    }

    /// The fraction of exactly-zero elements.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&x| x == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// The number of nonzero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Frobenius norm (square root of the sum of squares).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute value, or 0.0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Relative Frobenius-norm distance `||self - other|| / ||self||`.
    ///
    /// Returns the absolute distance when `self` is the zero tensor, so the
    /// result is always finite.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn relative_error(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "relative_error requires identical shapes"
        );
        let mut num = 0.0f32;
        let mut den = 0.0f32;
        for (a, b) in self.data.iter().zip(&other.data) {
            num += (a - b) * (a - b);
            den += a * a;
        }
        if den == 0.0 {
            num.sqrt()
        } else {
            (num / den).sqrt()
        }
    }

    /// Checks element-wise closeness within an absolute + relative tolerance.
    pub fn all_close(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol + tol * a.abs().max(b.abs()))
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor {
            shape: vec![0],
            data: Vec::new(),
        }
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_expected_contents() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(&[4]);
        assert!(o.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn from_fn_orders_row_major() {
        let t = Tensor::from_fn(&[2, 2], |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn offset_get_set_roundtrip() {
        let mut t = Tensor::zeros(&[3, 4, 5]);
        t.set(&[2, 1, 3], 7.5);
        assert_eq!(t.get(&[2, 1, 3]), 7.5);
        assert_eq!(t.offset(&[2, 1, 3]), 2 * 20 + 5 + 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        Tensor::zeros(&[2, 2]).get(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn rank_mismatch_panics() {
        Tensor::zeros(&[2, 2]).get(&[0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 3 + idx[1]) as f32);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    fn relu_zeroes_negatives() {
        let t = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]);
        assert_eq!(t.relu().as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn sparsity_counts_zeros() {
        let t = Tensor::from_vec(&[4], vec![0.0, 1.0, 0.0, 2.0]);
        assert_eq!(t.sparsity(), 0.5);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn relative_error_zero_for_identical() {
        let t = Tensor::from_vec(&[3], vec![1.0, -2.0, 3.0]);
        assert_eq!(t.relative_error(&t.clone()), 0.0);
    }

    #[test]
    fn relative_error_finite_for_zero_reference() {
        let z = Tensor::zeros(&[2]);
        let o = Tensor::ones(&[2]);
        assert!((z.relative_error(&o) - 2.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let t = Tensor::from_vec(&[2], vec![3.0, 4.0]);
        assert_eq!(t.frobenius_norm(), 5.0);
    }
}
