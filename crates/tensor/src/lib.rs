#![warn(missing_docs)]

//! Tensor and linear-algebra substrate for the ESCALATE reproduction.
//!
//! This crate implements, from scratch, everything the ESCALATE algorithm
//! needs from a numerical library:
//!
//! - [`Tensor`] — a dense N-dimensional row-major `f32` tensor,
//! - [`Matrix`] — a thin 2-D owner with matrix products and transposes,
//! - [`linalg`] — a Jacobi eigendecomposition and the Gram-matrix SVD used by
//!   kernel decomposition (the second factor dimension `R*S` is at most 49
//!   for CNN kernels, so the Gram route is both exact and fast),
//! - [`conv`] — reference convolution operators (direct, depthwise,
//!   pointwise) used to validate the reorganized decomposed convolution.
//!
//! # Examples
//!
//! ```
//! use escalate_tensor::{Tensor, conv};
//!
//! // A 1-channel 4x4 input convolved with a 1x1x3x3 averaging filter.
//! let input = Tensor::ones(&[1, 4, 4]);
//! let weight = Tensor::from_fn(&[1, 1, 3, 3], |_| 1.0 / 9.0);
//! let out = conv::conv2d(&input, &weight, 1, 1);
//! assert_eq!(out.shape(), &[1, 4, 4]);
//! ```

pub mod conv;
pub mod im2col;
pub mod linalg;
pub mod matrix;
pub mod tensor;

pub use matrix::Matrix;
pub use tensor::Tensor;

/// Error type for shape and numerical failures in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The operands' shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was provided.
        got: String,
    },
    /// An iterative numerical routine failed to converge.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            TensorError::NoConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} did not converge after {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for TensorError {}
