//! Reference convolution operators.
//!
//! These are the ground-truth implementations of Eq. (1) of the paper (and
//! its depthwise/pointwise variants) against which the decomposed and
//! reorganized forms (Eqs. (2) and (3)) are validated. Inputs use `C×X×Y`
//! layout; weights use `K×C×R×S`.

use crate::Tensor;

/// Output spatial size of a convolution along one axis.
///
/// `input` is the unpadded input size; the effective input is padded by
/// `pad` on both sides.
pub fn conv_out_size(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * pad;
    if padded < kernel {
        0
    } else {
        (padded - kernel) / stride + 1
    }
}

/// Direct 2-D convolution (cross-correlation, as in deep-learning practice).
///
/// `input` is `C×X×Y`, `weight` is `K×C×R×S`; the result is `K×X'×Y'` with
/// `X' = conv_out_size(X, R, stride, pad)`.
///
/// # Panics
///
/// Panics if the channel counts of `input` and `weight` disagree or the
/// tensors are not rank-3/rank-4 respectively.
pub fn conv2d(input: &Tensor, weight: &Tensor, stride: usize, pad: usize) -> Tensor {
    let [c, x, y]: [usize; 3] = input.shape().try_into().expect("input must be C*X*Y");
    let [k, wc, r, s]: [usize; 4] = weight.shape().try_into().expect("weight must be K*C*R*S");
    assert_eq!(c, wc, "input channels ({c}) != weight channels ({wc})");
    let ox = conv_out_size(x, r, stride, pad);
    let oy = conv_out_size(y, s, stride, pad);
    let mut out = Tensor::zeros(&[k, ox, oy]);
    let in_data = input.as_slice();
    let w_data = weight.as_slice();
    let out_data = out.as_mut_slice();
    for ko in 0..k {
        for ci in 0..c {
            let w_base = (ko * c + ci) * r * s;
            let in_base = ci * x * y;
            for oxi in 0..ox {
                for oyi in 0..oy {
                    let mut acc = 0.0f32;
                    for ri in 0..r {
                        let ix = (oxi * stride + ri) as isize - pad as isize;
                        if ix < 0 || ix as usize >= x {
                            continue;
                        }
                        for si in 0..s {
                            let iy = (oyi * stride + si) as isize - pad as isize;
                            if iy < 0 || iy as usize >= y {
                                continue;
                            }
                            acc += w_data[w_base + ri * s + si]
                                * in_data[in_base + ix as usize * y + iy as usize];
                        }
                    }
                    out_data[(ko * ox + oxi) * oy + oyi] += acc;
                }
            }
        }
    }
    out
}

/// Depthwise 2-D convolution: one `R×S` kernel per input channel.
///
/// `input` is `C×X×Y`, `weight` is `C×R×S`; the result is `C×X'×Y'`.
///
/// # Panics
///
/// Panics on channel-count mismatch or wrong ranks.
pub fn depthwise_conv2d(input: &Tensor, weight: &Tensor, stride: usize, pad: usize) -> Tensor {
    let [c, x, y]: [usize; 3] = input.shape().try_into().expect("input must be C*X*Y");
    let [wc, r, s]: [usize; 3] = weight.shape().try_into().expect("weight must be C*R*S");
    assert_eq!(c, wc, "input channels ({c}) != weight channels ({wc})");
    let ox = conv_out_size(x, r, stride, pad);
    let oy = conv_out_size(y, s, stride, pad);
    let mut out = Tensor::zeros(&[c, ox, oy]);
    for ci in 0..c {
        for oxi in 0..ox {
            for oyi in 0..oy {
                let mut acc = 0.0f32;
                for ri in 0..r {
                    let ix = (oxi * stride + ri) as isize - pad as isize;
                    if ix < 0 || ix as usize >= x {
                        continue;
                    }
                    for si in 0..s {
                        let iy = (oyi * stride + si) as isize - pad as isize;
                        if iy < 0 || iy as usize >= y {
                            continue;
                        }
                        acc +=
                            weight.get(&[ci, ri, si]) * input.get(&[ci, ix as usize, iy as usize]);
                    }
                }
                out.set(&[ci, oxi, oyi], acc);
            }
        }
    }
    out
}

/// Pointwise (1×1) convolution: a per-pixel linear map across channels.
///
/// `input` is `C×X×Y`, `weight` is `K×C`; the result is `K×X×Y`.
///
/// # Panics
///
/// Panics on channel-count mismatch or wrong ranks.
pub fn pointwise_conv2d(input: &Tensor, weight: &crate::Matrix) -> Tensor {
    let [c, x, y]: [usize; 3] = input.shape().try_into().expect("input must be C*X*Y");
    assert_eq!(
        weight.cols(),
        c,
        "weight cols ({}) != input channels ({c})",
        weight.cols()
    );
    let k = weight.rows();
    let mut out = Tensor::zeros(&[k, x, y]);
    let plane = x * y;
    let in_data = input.as_slice();
    let out_data = out.as_mut_slice();
    for ko in 0..k {
        for ci in 0..c {
            let w = weight.get(ko, ci);
            if w == 0.0 {
                continue;
            }
            let src = &in_data[ci * plane..(ci + 1) * plane];
            let dst = &mut out_data[ko * plane..(ko + 1) * plane];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += w * s;
            }
        }
    }
    out
}

/// Single-channel 2-D convolution of one feature map with one kernel.
///
/// `input` is `X×Y`, `kernel` is `R×S`; result is `X'×Y'`. Used to express
/// the basis convolutions of Eq. (3).
pub fn conv2d_single(input: &Tensor, kernel: &Tensor, stride: usize, pad: usize) -> Tensor {
    let [x, y]: [usize; 2] = input.shape().try_into().expect("input must be X*Y");
    let [r, s]: [usize; 2] = kernel.shape().try_into().expect("kernel must be R*S");
    let ox = conv_out_size(x, r, stride, pad);
    let oy = conv_out_size(y, s, stride, pad);
    let mut out = Tensor::zeros(&[ox, oy]);
    for oxi in 0..ox {
        for oyi in 0..oy {
            let mut acc = 0.0f32;
            for ri in 0..r {
                let ix = (oxi * stride + ri) as isize - pad as isize;
                if ix < 0 || ix as usize >= x {
                    continue;
                }
                for si in 0..s {
                    let iy = (oyi * stride + si) as isize - pad as isize;
                    if iy < 0 || iy as usize >= y {
                        continue;
                    }
                    acc += kernel.get(&[ri, si]) * input.get(&[ix as usize, iy as usize]);
                }
            }
            out.set(&[oxi, oyi], acc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn out_size_formula() {
        assert_eq!(conv_out_size(32, 3, 1, 1), 32);
        assert_eq!(conv_out_size(32, 3, 2, 1), 16);
        assert_eq!(conv_out_size(7, 7, 1, 0), 1);
        assert_eq!(conv_out_size(2, 5, 1, 0), 0);
        assert_eq!(conv_out_size(224, 7, 2, 3), 112);
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1 kernel with weight 1 reproduces the input exactly.
        let input = Tensor::from_fn(&[2, 3, 3], |i| (i[0] * 9 + i[1] * 3 + i[2]) as f32);
        let mut weight = Tensor::zeros(&[2, 2, 1, 1]);
        weight.set(&[0, 0, 0, 0], 1.0);
        weight.set(&[1, 1, 0, 0], 1.0);
        let out = conv2d(&input, &weight, 1, 0);
        assert_eq!(out, input);
    }

    #[test]
    fn averaging_kernel_on_ones() {
        let input = Tensor::ones(&[1, 5, 5]);
        let weight = Tensor::from_fn(&[1, 1, 3, 3], |_| 1.0);
        let out = conv2d(&input, &weight, 1, 0);
        assert_eq!(out.shape(), &[1, 3, 3]);
        assert!(out.as_slice().iter().all(|&v| (v - 9.0).abs() < 1e-6));
    }

    #[test]
    fn padding_zeroes_contribute_nothing() {
        let input = Tensor::ones(&[1, 3, 3]);
        let weight = Tensor::from_fn(&[1, 1, 3, 3], |_| 1.0);
        let out = conv2d(&input, &weight, 1, 1);
        assert_eq!(out.shape(), &[1, 3, 3]);
        // Center sees all 9 inputs; corners see only 4.
        assert_eq!(out.get(&[0, 1, 1]), 9.0);
        assert_eq!(out.get(&[0, 0, 0]), 4.0);
        assert_eq!(out.get(&[0, 0, 1]), 6.0);
    }

    #[test]
    fn stride_two_subsamples() {
        let input = Tensor::from_fn(&[1, 4, 4], |i| (i[1] * 4 + i[2]) as f32);
        let mut weight = Tensor::zeros(&[1, 1, 1, 1]);
        weight.set(&[0, 0, 0, 0], 1.0);
        let out = conv2d(&input, &weight, 2, 0);
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.get(&[0, 0, 0]), 0.0);
        assert_eq!(out.get(&[0, 0, 1]), 2.0);
        assert_eq!(out.get(&[0, 1, 0]), 8.0);
        assert_eq!(out.get(&[0, 1, 1]), 10.0);
    }

    #[test]
    fn conv_is_linear_in_input() {
        let a = Tensor::from_fn(&[2, 4, 4], |i| (i[0] + i[1] * 2 + i[2]) as f32 * 0.1);
        let b = Tensor::from_fn(&[2, 4, 4], |i| {
            ((i[0] * 7 + i[1] + i[2] * 3) % 5) as f32 * 0.2
        });
        let w = Tensor::from_fn(&[3, 2, 3, 3], |i| {
            ((i[0] + i[1] + i[2] + i[3]) % 3) as f32 - 1.0
        });
        let lhs = conv2d(&a.add(&b), &w, 1, 1);
        let rhs = conv2d(&a, &w, 1, 1).add(&conv2d(&b, &w, 1, 1));
        assert!(lhs.all_close(&rhs, 1e-4));
    }

    #[test]
    fn depthwise_matches_grouped_direct() {
        // A depthwise conv equals a direct conv with a block-diagonal weight.
        let input = Tensor::from_fn(&[3, 5, 5], |i| ((i[0] * 11 + i[1] * 3 + i[2]) % 7) as f32);
        let dw = Tensor::from_fn(&[3, 3, 3], |i| ((i[0] + i[1] * 2 + i[2]) % 4) as f32 - 1.5);
        let mut full = Tensor::zeros(&[3, 3, 3, 3]);
        for c in 0..3 {
            for r in 0..3 {
                for s in 0..3 {
                    full.set(&[c, c, r, s], dw.get(&[c, r, s]));
                }
            }
        }
        let a = depthwise_conv2d(&input, &dw, 1, 1);
        let b = conv2d(&input, &full, 1, 1);
        assert!(a.all_close(&b, 1e-5));
    }

    #[test]
    fn pointwise_matches_one_by_one_direct() {
        let input = Tensor::from_fn(&[4, 3, 3], |i| (i[0] * 9 + i[1] * 3 + i[2]) as f32 * 0.05);
        let w = Matrix::from_vec(2, 4, (0..8).map(|i| i as f32 * 0.3 - 1.0).collect());
        let full = Tensor::from_fn(&[2, 4, 1, 1], |i| w.get(i[0], i[1]));
        let a = pointwise_conv2d(&input, &w);
        let b = conv2d(&input, &full, 1, 0);
        assert!(a.all_close(&b, 1e-5));
    }

    #[test]
    fn single_channel_matches_direct() {
        let input2d = Tensor::from_fn(&[6, 6], |i| ((i[0] * 5 + i[1]) % 9) as f32);
        let kern = Tensor::from_fn(&[3, 3], |i| (i[0] * 3 + i[1]) as f32 * 0.1);
        let input3d = input2d.reshape(&[1, 6, 6]);
        let w4d = kern.reshape(&[1, 1, 3, 3]);
        let a = conv2d_single(&input2d, &kern, 1, 1);
        let b = conv2d(&input3d, &w4d, 1, 1);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
