//! im2col lowering and GEMM-based convolution.
//!
//! Convolution lowered to a matrix product is both a faster validation
//! path for the larger test workloads and the reference formulation for
//! the reshaped weight matrix `W' ∈ R^{K×CRS}` that kernel decomposition
//! factors. `im2col` unrolls each output position's receptive field into
//! a column; `conv2d_gemm` multiplies the reshaped weights against it.

use crate::conv::conv_out_size;
use crate::{Matrix, Tensor};

/// Unrolls a `C×X×Y` input into the im2col matrix of shape
/// `(C·R·S) × (X'·Y')`: column `j` holds the receptive field of output
/// position `j` in `(c, r, s)` row-major order, with zero padding.
///
/// # Panics
///
/// Panics if `input` is not rank-3 or `stride` is zero.
pub fn im2col(input: &Tensor, r: usize, s: usize, stride: usize, pad: usize) -> Matrix {
    let [c, x, y]: [usize; 3] = input.shape().try_into().expect("input must be C*X*Y");
    assert!(stride > 0, "stride must be positive");
    let ox = conv_out_size(x, r, stride, pad);
    let oy = conv_out_size(y, s, stride, pad);
    let rows = c * r * s;
    let cols = ox * oy;
    let mut m = Matrix::zeros(rows, cols);
    let data = input.as_slice();
    for ci in 0..c {
        for ri in 0..r {
            for si in 0..s {
                let row = (ci * r + ri) * s + si;
                let dst = m.row_mut(row);
                for oxi in 0..ox {
                    let ix = (oxi * stride + ri) as isize - pad as isize;
                    if ix < 0 || ix as usize >= x {
                        continue;
                    }
                    for oyi in 0..oy {
                        let iy = (oyi * stride + si) as isize - pad as isize;
                        if iy < 0 || iy as usize >= y {
                            continue;
                        }
                        dst[oxi * oy + oyi] = data[(ci * x + ix as usize) * y + iy as usize];
                    }
                }
            }
        }
    }
    m
}

/// Convolution as a matrix product: reshapes `weight` (`K×C×R×S`) to
/// `K × (C·R·S)` and multiplies the im2col matrix, producing `K×X'×Y'`.
///
/// # Panics
///
/// Panics on rank or channel mismatches (see [`im2col`]).
pub fn conv2d_gemm(input: &Tensor, weight: &Tensor, stride: usize, pad: usize) -> Tensor {
    let [k, c, r, s]: [usize; 4] = weight.shape().try_into().expect("weight must be K*C*R*S");
    let [ic, x, y]: [usize; 3] = input.shape().try_into().expect("input must be C*X*Y");
    assert_eq!(c, ic, "channel mismatch");
    let cols = im2col(input, r, s, stride, pad);
    let w = Matrix::from_vec(k, c * r * s, weight.as_slice().to_vec());
    let out = w.matmul(&cols);
    let ox = conv_out_size(x, r, stride, pad);
    let oy = conv_out_size(y, s, stride, pad);
    Tensor::from_vec(&[k, ox, oy], out.as_slice().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d;

    fn input(c: usize, x: usize) -> Tensor {
        Tensor::from_fn(&[c, x, x], |i| {
            (((i[0] * 31 + i[1] * 7 + i[2] * 3) % 17) as f32 - 8.0) * 0.1
        })
    }

    fn weight(k: usize, c: usize, rs: usize) -> Tensor {
        Tensor::from_fn(&[k, c, rs, rs], |i| {
            (((i[0] * 13 + i[1] * 5 + i[2] * 3 + i[3]) % 11) as f32 - 5.0) * 0.2
        })
    }

    #[test]
    fn gemm_matches_direct_convolution() {
        for (stride, pad) in [(1usize, 1usize), (2, 1), (1, 0), (2, 2)] {
            let inp = input(5, 9);
            let w = weight(7, 5, 3);
            let a = conv2d(&inp, &w, stride, pad);
            let b = conv2d_gemm(&inp, &w, stride, pad);
            assert!(a.all_close(&b, 1e-4), "stride={stride} pad={pad}");
        }
    }

    #[test]
    fn gemm_matches_direct_for_large_kernels() {
        let inp = input(3, 12);
        let w = weight(4, 3, 5);
        let a = conv2d(&inp, &w, 2, 2);
        let b = conv2d_gemm(&inp, &w, 2, 2);
        assert!(a.all_close(&b, 1e-4));
    }

    #[test]
    fn im2col_shape_and_padding() {
        let inp = input(2, 4);
        let m = im2col(&inp, 3, 3, 1, 1);
        assert_eq!((m.rows(), m.cols()), (2 * 9, 16));
        // The first output position's top-left tap is padding.
        assert_eq!(m.get(0, 0), 0.0);
        // The center tap of the first column is input[c=0, 0, 0].
        assert_eq!(m.get(4, 0), inp.get(&[0, 0, 0]));
    }

    #[test]
    fn unit_kernel_im2col_is_identity_layout() {
        let inp = input(3, 4);
        let m = im2col(&inp, 1, 1, 1, 0);
        assert_eq!((m.rows(), m.cols()), (3, 16));
        for c in 0..3 {
            for p in 0..16 {
                assert_eq!(m.get(c, p), inp.as_slice()[c * 16 + p]);
            }
        }
    }
}
