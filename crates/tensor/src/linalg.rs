//! Eigendecomposition and SVD routines used by kernel decomposition.
//!
//! Kernel decomposition (PENNI / ESCALATE §2.3) factors the reshaped weight
//! matrix `W' ∈ R^{KC×RS}` as `W' = Ce · B` with `B ∈ R^{M×RS}`. Because
//! `RS ≤ 49` for CNN kernels while `KC` can be tens of thousands, we compute
//! the factorization through the small `RS×RS` Gram matrix: its eigenvectors
//! are the right singular vectors of `W'`, which are exactly the basis
//! kernels.

use crate::{Matrix, TensorError};

/// Result of a symmetric eigendecomposition `A = V diag(λ) Vᵀ`.
///
/// Eigenvalues are sorted in descending order; `vectors` holds the
/// corresponding eigenvectors as *columns*.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f32>,
    /// Matrix whose `j`-th column is the eigenvector for `values[j]`.
    pub vectors: Matrix,
}

/// Jacobi eigendecomposition of a symmetric matrix.
///
/// Uses the classic cyclic Jacobi rotation scheme, which is simple, robust,
/// and more than fast enough for the `RS×RS` (≤ 49×49) matrices that appear
/// in kernel decomposition.
///
/// # Errors
///
/// Returns [`TensorError::NoConvergence`] if the off-diagonal norm has not
/// dropped below tolerance after 100 sweeps, and
/// [`TensorError::ShapeMismatch`] if `a` is not square.
///
/// # Examples
///
/// ```
/// use escalate_tensor::{Matrix, linalg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let eig = linalg::jacobi_eigen(&a)?;
/// assert!((eig.values[0] - 3.0).abs() < 1e-5);
/// assert!((eig.values[1] - 1.0).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
pub fn jacobi_eigen(a: &Matrix) -> Result<SymmetricEigen, TensorError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(TensorError::ShapeMismatch {
            expected: "square matrix".to_string(),
            got: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    if n == 0 {
        return Ok(SymmetricEigen {
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
        });
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 100;
    // f32 arithmetic: a relative tolerance near machine epsilon is the
    // tightest achievable; demanding more never converges on rank-deficient
    // Gram matrices with repeated eigenvalues.
    let tol = 1e-6_f32 * a.frobenius_norm().max(1.0);

    for sweep in 0..max_sweeps {
        let mut off = 0.0f32;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m.get(p, q).powi(2);
            }
        }
        if off.sqrt() <= tol {
            return Ok(sorted_eigen(m, v));
        }
        let _ = sweep;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Skip rotations that cannot change the matrix at f32
                // precision — they only churn rounding error.
                if apq.abs() <= 1e-9 * (app.abs() + aqq.abs()).max(f32::MIN_POSITIVE) {
                    m.set(p, q, 0.0);
                    m.set(q, p, 0.0);
                    continue;
                }
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation G(p, q, θ) on both sides of m, and
                // accumulate it into v.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    Err(TensorError::NoConvergence {
        routine: "jacobi_eigen",
        iterations: max_sweeps,
    })
}

fn sorted_eigen(m: Matrix, v: Matrix) -> SymmetricEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        m.get(j, j)
            .partial_cmp(&m.get(i, i))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut values = Vec::with_capacity(n);
    let mut vectors = Matrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        values.push(m.get(src, src));
        for r in 0..n {
            vectors.set(r, dst, v.get(r, src));
        }
    }
    SymmetricEigen { values, vectors }
}

/// Truncated SVD of `a ∈ R^{rows×cols}` computed through the `cols×cols`
/// Gram matrix, returning the factorization `a ≈ coeffs · basis` with
/// `coeffs ∈ R^{rows×m}` and `basis ∈ R^{m×cols}` (orthonormal rows).
///
/// This is exactly the factorization kernel decomposition needs: `basis`
/// rows are the top-`m` right singular vectors (the basis kernels), and
/// `coeffs = a · basisᵀ` are the projection coefficients.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `m` exceeds `a.cols()`, or the
/// underlying eigendecomposition's [`TensorError::NoConvergence`].
///
/// # Examples
///
/// ```
/// use escalate_tensor::{Matrix, linalg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A rank-1 matrix is reproduced exactly by a single component.
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
/// let f = linalg::truncated_svd(&a, 1)?;
/// let approx = f.coeffs.matmul(&f.basis);
/// assert!(approx.all_close(&a, 1e-4));
/// # Ok(())
/// # }
/// ```
pub fn truncated_svd(a: &Matrix, m: usize) -> Result<Factorization, TensorError> {
    if m > a.cols() {
        return Err(TensorError::ShapeMismatch {
            expected: format!("rank m <= {}", a.cols()),
            got: format!("m = {m}"),
        });
    }
    let eig = jacobi_eigen(&a.gram())?;
    // basis: top-m eigenvectors of the Gram matrix as rows (right singular
    // vectors of `a`).
    let mut basis = Matrix::zeros(m, a.cols());
    for comp in 0..m {
        for c in 0..a.cols() {
            basis.set(comp, c, eig.vectors.get(c, comp));
        }
    }
    // coeffs = a · basisᵀ (orthonormality of basis rows makes this the
    // least-squares optimal projection).
    let coeffs = a.matmul(&basis.transpose());
    let energy: f32 = eig.values.iter().map(|&l| l.max(0.0)).sum();
    let captured: f32 = eig.values.iter().take(m).map(|&l| l.max(0.0)).sum();
    Ok(Factorization {
        coeffs,
        basis,
        captured_energy: if energy > 0.0 {
            (captured / energy).clamp(0.0, 1.0)
        } else {
            1.0
        },
    })
}

/// A rank-`m` factorization `a ≈ coeffs · basis` produced by
/// [`truncated_svd`].
#[derive(Debug, Clone)]
pub struct Factorization {
    /// Projection coefficients, `rows×m`.
    pub coeffs: Matrix,
    /// Orthonormal basis rows, `m×cols`.
    pub basis: Matrix,
    /// Fraction of squared Frobenius norm captured by the kept components
    /// (in `[0, 1]`).
    pub captured_energy: f32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(f: &Factorization) -> Matrix {
        f.coeffs.matmul(&f.basis)
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 5.0]]);
        let e = jacobi_eigen(&a).unwrap();
        assert!((e.values[0] - 5.0).abs() < 1e-5);
        assert!((e.values[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 1.0]]);
        let e = jacobi_eigen(&a).unwrap();
        // A = V diag(λ) Vᵀ
        let n = 3;
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam.set(i, i, e.values[i]);
        }
        let recon = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        assert!(recon.all_close(&a, 1e-4));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 2.0, 1.0], &[0.0, 1.0, 2.0]]);
        let e = jacobi_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.all_close(&Matrix::identity(3), 1e-4));
    }

    #[test]
    fn eigen_rejects_non_square() {
        assert!(matches!(
            jacobi_eigen(&Matrix::zeros(2, 3)),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn full_rank_svd_is_exact() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0],
            &[0.0, 1.0, -1.0],
            &[2.0, 0.5, 0.1],
            &[4.0, 4.0, 4.0],
        ]);
        let f = truncated_svd(&a, 3).unwrap();
        assert!(reconstruct(&f).all_close(&a, 1e-3));
        assert!((f.captured_energy - 1.0).abs() < 1e-5);
    }

    #[test]
    fn rank_one_matrix_needs_one_component() {
        let u = [1.0f32, -2.0, 0.5, 3.0];
        let v = [2.0f32, 1.0, -1.0];
        let a = Matrix::from_vec(
            4,
            3,
            u.iter()
                .flat_map(|&x| v.iter().map(move |&y| x * y))
                .collect(),
        );
        let f = truncated_svd(&a, 1).unwrap();
        assert!(reconstruct(&f).all_close(&a, 1e-4));
    }

    #[test]
    fn truncation_error_decreases_with_rank() {
        // Deterministic non-degenerate matrix.
        let a = Matrix::from_vec(
            8,
            4,
            (0..32)
                .map(|i| ((i * 37 % 13) as f32 - 6.0) * 0.3 + (i as f32 * 0.01))
                .collect(),
        );
        let mut last = f32::INFINITY;
        for m in 1..=4 {
            let f = truncated_svd(&a, m).unwrap();
            let mut err = 0.0f32;
            let r = reconstruct(&f);
            for (x, y) in a.as_slice().iter().zip(r.as_slice()) {
                err += (x - y) * (x - y);
            }
            assert!(err <= last + 1e-4, "error should not grow with rank");
            last = err;
        }
        assert!(last < 1e-4, "full rank should be near-exact");
    }

    #[test]
    fn svd_rejects_oversized_rank() {
        let a = Matrix::zeros(4, 3);
        assert!(matches!(
            truncated_svd(&a, 4),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn basis_rows_are_orthonormal() {
        let a = Matrix::from_vec(6, 4, (0..24).map(|i| (i as f32 * 0.7).sin()).collect());
        let f = truncated_svd(&a, 3).unwrap();
        let bbt = f.basis.matmul(&f.basis.transpose());
        assert!(bbt.all_close(&Matrix::identity(3), 1e-4));
    }
}
