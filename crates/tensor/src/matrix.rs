//! Dense row-major `f32` matrix with the products needed by kernel
//! decomposition.

/// A dense 2-D matrix stored in row-major order.
///
/// # Examples
///
/// ```
/// use escalate_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Writes element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A flat view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// A mutable flat view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dimensions differ: {} vs {}",
            self.cols, other.rows
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &b) in dst.iter_mut().zip(orow) {
                    *d += a * b;
                }
            }
        }
        out
    }

    /// The transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// The Gram matrix `selfᵀ * self` (always `cols x cols`, symmetric).
    #[allow(clippy::needless_range_loop)]
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for row in 0..self.rows {
            let r = self.row(row);
            for i in 0..self.cols {
                let ri = r[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    out.data[i * self.cols + j] += ri * r[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                out.data[i * self.cols + j] = out.data[j * self.cols + i];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Checks element-wise closeness within an absolute + relative tolerance.
    pub fn all_close(&self, other: &Matrix, tol: f32) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol + tol * a.abs().max(b.abs()))
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let id = Matrix::identity(3);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_is_symmetric_and_correct() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let expected = a.transpose().matmul(&a);
        assert!(g.all_close(&expected, 1e-6));
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn row_views_are_correct() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
    }
}
