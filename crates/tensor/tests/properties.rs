//! Property-based tests for the tensor/linear-algebra substrate.

use escalate_tensor::im2col::conv2d_gemm;
use escalate_tensor::{conv, linalg, Matrix, Tensor};
use proptest::prelude::*;

fn small_tensor(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let len: usize = shape.iter().product();
    prop::collection::vec(-8i32..8, len).prop_map(move |v| {
        Tensor::from_vec(&shape, v.into_iter().map(|x| x as f32 * 0.25).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Convolution is linear: conv(a + b) = conv(a) + conv(b).
    #[test]
    fn conv_is_linear(
        a in small_tensor(vec![3, 6, 6]),
        b in small_tensor(vec![3, 6, 6]),
        w in small_tensor(vec![4, 3, 3, 3]),
        stride in 1usize..3,
    ) {
        let lhs = conv::conv2d(&a.add(&b), &w, stride, 1);
        let rhs = conv::conv2d(&a, &w, stride, 1).add(&conv::conv2d(&b, &w, stride, 1));
        prop_assert!(lhs.all_close(&rhs, 1e-3));
    }

    /// The GEMM lowering equals direct convolution on arbitrary inputs.
    #[test]
    fn gemm_equals_direct(
        input in small_tensor(vec![2, 7, 7]),
        w in small_tensor(vec![3, 2, 3, 3]),
        stride in 1usize..3,
        pad in 0usize..3,
    ) {
        let a = conv::conv2d(&input, &w, stride, pad);
        let b = conv2d_gemm(&input, &w, stride, pad);
        prop_assert!(a.all_close(&b, 1e-3));
    }

    /// Matrix multiplication distributes over the Gram identity:
    /// gram(A) = Aᵀ·A for any A.
    #[test]
    fn gram_matches_transpose_product(
        data in prop::collection::vec(-8i32..8, 24),
    ) {
        let a = Matrix::from_vec(6, 4, data.into_iter().map(|x| x as f32 * 0.3).collect());
        let g = a.gram();
        let tt = a.transpose().matmul(&a);
        prop_assert!(g.all_close(&tt, 1e-4));
    }

    /// SVD truncation error is non-increasing in rank and the top-rank
    /// basis is orthonormal.
    #[test]
    fn svd_error_monotone_in_rank(
        data in prop::collection::vec(-8i32..8, 48),
    ) {
        let a = Matrix::from_vec(12, 4, data.into_iter().map(|x| x as f32 * 0.3).collect());
        let mut last = f32::INFINITY;
        for m in 1..=4usize {
            let f = linalg::truncated_svd(&a, m).expect("svd converges");
            let recon = f.coeffs.matmul(&f.basis);
            let mut err = 0.0f32;
            for (x, y) in a.as_slice().iter().zip(recon.as_slice()) {
                err += (x - y) * (x - y);
            }
            prop_assert!(err <= last + 1e-3, "m={m}: {err} > {last}");
            last = err;
            let bbt = f.basis.matmul(&f.basis.transpose());
            prop_assert!(bbt.all_close(&Matrix::identity(m), 1e-3));
        }
        prop_assert!(last < 1e-2, "full rank must reconstruct");
    }

    /// Eigenvalues of a Gram matrix are non-negative and sum to its trace.
    #[test]
    fn gram_eigenvalues_are_nonnegative(
        data in prop::collection::vec(-8i32..8, 30),
    ) {
        let a = Matrix::from_vec(6, 5, data.into_iter().map(|x| x as f32 * 0.3).collect());
        let g = a.gram();
        let eig = linalg::jacobi_eigen(&g).expect("eigen converges");
        let trace: f32 = (0..5).map(|i| g.get(i, i)).sum();
        let sum: f32 = eig.values.iter().sum();
        prop_assert!((trace - sum).abs() <= 1e-3 * trace.abs().max(1.0));
        for &l in &eig.values {
            prop_assert!(l > -1e-3 * trace.abs().max(1.0), "negative eigenvalue {l}");
        }
    }

    /// Tensor reshape/map/axpy algebra holds.
    #[test]
    fn tensor_axpy_matches_scale_add(
        a in small_tensor(vec![4, 4]),
        b in small_tensor(vec![4, 4]),
        alpha in -4i32..4,
    ) {
        let alpha = alpha as f32 * 0.5;
        let mut lhs = a.clone();
        lhs.axpy(alpha, &b);
        let rhs = a.add(&b.scale(alpha));
        prop_assert!(lhs.all_close(&rhs, 1e-4));
    }
}
