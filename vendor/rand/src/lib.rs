//! Offline stand-in for the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace patches `rand` to this crate (see `[patch.crates-io]` in
//! the root `Cargo.toml`). Only the pieces the repo actually calls are
//! implemented: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_bool`, and `Rng::gen_range` over primitive integer and float
//! ranges.
//!
//! `StdRng` is xoshiro256** seeded through SplitMix64 — a different stream
//! than upstream's ChaCha12, which is fine here: the repo treats `StdRng`
//! as an opaque deterministic source (upstream documents `StdRng` streams
//! as unstable across versions), and every consumer derives statistics
//! from the draws rather than asserting exact values.

#![warn(missing_docs)]

/// Low-level uniform bit source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a `u64` seed (subset of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // 53 uniform mantissa bits in [0, 1); strictly below 1.0, so p = 1.0
        // always accepts and p = 0.0 always rejects.
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// A range that can produce a uniform sample (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Uniform `u64` in `[0, span)` by widening multiply (Lemire's method)
/// with the exact rejection pass.
#[inline]
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // 2^64 mod span: draws whose low product word falls below this would
    // be biased toward small results, so reject and redraw.
    let threshold = span.wrapping_neg() % span;
    loop {
        let wide = (rng.next_u64() as u128) * (span as u128);
        if wide as u64 >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )+};
}

int_sample_range!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + (self.end - self.start) * unit_f32(rng.next_u32());
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Pseudo-random number generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    ///
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
    /// ```
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro forbids the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u64..1_000_000) == c.gen_range(0u64..1_000_000))
            .count();
        assert!(same < 5, "different seeds should diverge");
    }

    #[test]
    fn gen_bool_frequency_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        for &p in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let hits = (0..10_000).filter(|_| rng.gen_bool(p)).count() as f64 / 10_000.0;
            assert!((hits - p).abs() < 0.02, "p={p} hits={hits}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5u32..5);
    }
}
