//! Offline stand-in for the `rayon` API surface this workspace uses.
//!
//! The build environment has no network access, so the workspace patches
//! `rayon` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It provides order-preserving parallel `map`/`collect`/
//! `sum`/`for_each` over vectors, slices, and integer ranges, plus the
//! `ThreadPoolBuilder::build_global` / `current_num_threads` global-pool
//! API, on top of `std::thread::scope`.
//!
//! Scheduling model: a process-wide token budget of `pool size - 1` extra
//! workers. Each parallel call grabs as many tokens as it can, spawns that
//! many scoped workers pulling items off a shared queue (the calling
//! thread participates too), and releases the tokens when done. Nested
//! parallel calls therefore degrade gracefully to sequential execution
//! instead of oversubscribing the machine — a poor man's work sharing
//! where real rayon would work-steal. Results are always reassembled in
//! input order, so a computation's output is independent of the pool size.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Re-exports to mirror `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

// ---------------------------------------------------------------------------
// Global pool configuration.

/// Requested global pool size; 0 means "not configured".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Extra-worker token budget, initialized from the pool size on first use.
static TOKENS: OnceLock<AtomicIsize> = OnceLock::new();

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads the global pool uses.
pub fn current_num_threads() -> usize {
    match CONFIGURED.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

fn tokens() -> &'static AtomicIsize {
    TOKENS.get_or_init(|| AtomicIsize::new(current_num_threads() as isize - 1))
}

fn acquire_tokens(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    let t = tokens();
    loop {
        let cur = t.load(Ordering::Relaxed);
        if cur <= 0 {
            return 0;
        }
        let take = cur.min(want as isize);
        if t.compare_exchange(cur, cur - take, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return take as usize;
        }
    }
}

/// Releases tokens on drop so worker panics cannot leak budget.
struct TokenGuard(usize);

impl Drop for TokenGuard {
    fn drop(&mut self) {
        if self.0 > 0 {
            tokens().fetch_add(self.0 as isize, Ordering::Relaxed);
        }
    }
}

/// Error from [`ThreadPoolBuilder::build_global`].
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the global thread pool has already been initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global pool (mirrors `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (auto) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Requests an explicit thread count (0 = auto).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs this configuration as the global pool.
    ///
    /// # Errors
    ///
    /// Returns [`ThreadPoolBuildError`] if the pool was already configured
    /// or its token budget already materialized.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let requested = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        if CONFIGURED
            .compare_exchange(0, requested, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return Err(ThreadPoolBuildError);
        }
        if TOKENS
            .set(AtomicIsize::new(requested as isize - 1))
            .is_err()
        {
            return Err(ThreadPoolBuildError);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The parallel driver.

fn parallel_apply<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    if len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let extra = acquire_tokens(
        len.saturating_sub(1)
            .min(current_num_threads().saturating_sub(1)),
    );
    let _guard = TokenGuard(extra);
    if extra == 0 {
        return items.into_iter().map(f).collect();
    }

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|scope| {
        // Captures only shared references, so it is `Copy` and can be
        // spawned several times and also run on the calling thread.
        let work = || loop {
            let item = queue.lock().expect("work queue poisoned").pop_front();
            match item {
                Some((i, v)) => {
                    let r = f(v);
                    done.lock().expect("result buffer poisoned").push((i, r));
                }
                None => break,
            }
        };
        for _ in 0..extra {
            scope.spawn(work);
        }
        work();
    });

    let mut out = done.into_inner().expect("result buffer poisoned");
    out.sort_unstable_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Runs two closures, in parallel when a worker token is available.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let extra = acquire_tokens(1);
    let _guard = TokenGuard(extra);
    if extra == 0 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("joined closure panicked"))
    })
}

// ---------------------------------------------------------------------------
// Iterator traits.

/// A finite, order-preserving parallel iterator.
pub trait ParallelIterator: Sized + Send {
    /// Element type.
    type Item: Send;

    /// Materializes all elements, in order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps each element through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects the elements in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Sums the elements (fold order matches the sequential iterator).
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.drive().into_iter().sum()
    }

    /// Runs `f` on every element in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.map(f).drive();
    }

    /// Number of elements.
    fn count(self) -> usize {
        self.drive().len()
    }
}

/// Conversion into a parallel iterator (mirrors rayon's trait).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Borrowing conversion: `.par_iter()` over `&self` (mirrors rayon).
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a reference).
    type Item: Send + 'data;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `&self`.
    fn par_iter(&'data self) -> Self::Iter;
}

/// Parallel iterator over an owned vector of items.
pub struct VecParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),+ $(,)?) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = VecParIter<$t>;

            fn into_par_iter(self) -> VecParIter<$t> {
                VecParIter { items: self.collect() }
            }
        }
    )+};
}

range_into_par_iter!(u32, u64, usize, i32, i64);

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = VecParIter<&'data T>;

    fn par_iter(&'data self) -> VecParIter<&'data T> {
        VecParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = VecParIter<&'data T>;

    fn par_iter(&'data self) -> VecParIter<&'data T> {
        VecParIter {
            items: self.iter().collect(),
        }
    }
}

/// Lazy parallel map adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        parallel_apply(self.base.drive(), &self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice_borrows() {
        let data = vec![1u64, 2, 3, 4, 5];
        let s: u64 = data.par_iter().map(|&x| x * x).sum();
        assert_eq!(s, 55);
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let out: Vec<Vec<usize>> = (0..8usize)
            .into_par_iter()
            .map(|i| (0..64usize).into_par_iter().map(move |j| i * j).collect())
            .collect();
        assert_eq!(out.len(), 8);
        assert_eq!(out[3][7], 21);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn worker_panic_propagates_and_releases_tokens() {
        let res = std::panic::catch_unwind(|| {
            (0..100usize).into_par_iter().for_each(|i| {
                if i == 37 {
                    panic!("boom");
                }
            });
        });
        assert!(res.is_err());
        // The budget must be usable again afterwards.
        let v: Vec<usize> = (0..100usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(v[99], 100);
    }
}
