//! Offline stand-in for the `criterion` 0.5 API surface this workspace
//! uses.
//!
//! The build environment has no network access, so the workspace patches
//! `criterion` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It implements `black_box`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`/`sample_size`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: when the binary is invoked with `--bench` (what
//! `cargo bench` passes), each benchmark is warmed up briefly, then timed
//! over `sample_size` samples whose iteration counts are sized so one
//! sample takes roughly `measurement_time / sample_size`; the median,
//! minimum, and maximum per-iteration times are printed. Under any other
//! invocation (notably `cargo test`, which passes `--test`), every
//! benchmark body runs exactly once as a smoke test. There are no HTML
//! reports, statistical regressions, or saved baselines.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher<'a> {
    mode: Mode,
    /// Per-iteration durations recorded by `iter`, one per sample.
    samples: &'a mut Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly and records its per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
            }
            Mode::Measure => {
                // Warm up and size the per-sample iteration count so one
                // sample lands near measurement_time / sample_size.
                let warmup_start = Instant::now();
                let mut warmup_iters = 0u64;
                while warmup_start.elapsed() < Duration::from_millis(200) {
                    black_box(routine());
                    warmup_iters += 1;
                }
                let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
                let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
                let iters = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

                self.samples.clear();
                for _ in 0..self.sample_size {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    self.samples
                        .push(start.elapsed().as_secs_f64() / iters as f64);
                }
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Run each body once (`cargo test` over a harness=false bench).
    Smoke,
    /// Timed sampling (`cargo bench`).
    Measure,
}

fn detect_mode() -> Mode {
    // Upstream criterion runs each benchmark once (test mode) under
    // `--test`, even though `cargo bench` also passes `--bench`; the
    // explicit flag wins. `cargo bench -- --test` is how CI smoke-checks
    // benchmarks without paying for measurement.
    if std::env::args().any(|a| a == "--test") {
        Mode::Smoke
    } else if std::env::args().any(|a| a == "--bench") {
        Mode::Measure
    } else {
        Mode::Smoke
    }
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    mode: Mode,
    sample_size: usize,
    measurement_time: Duration,
    mut body: F,
) {
    let mut samples = Vec::new();
    let mut bencher = Bencher {
        mode,
        samples: &mut samples,
        sample_size,
        measurement_time,
    };
    body(&mut bencher);
    match mode {
        Mode::Smoke => println!("bench {id}: ok (smoke)"),
        Mode::Measure => {
            samples.sort_by(|a, b| a.total_cmp(b));
            if samples.is_empty() {
                println!("bench {id}: no samples recorded");
                return;
            }
            let median = samples[samples.len() / 2];
            let mut line = String::new();
            let _ = write!(
                line,
                "bench {id}: median {} (min {}, max {}, {} samples)",
                format_duration(median),
                format_duration(samples[0]),
                format_duration(samples[samples.len() - 1]),
                samples.len()
            );
            println!("{line}");
        }
    }
}

/// Entry point handed to benchmark functions (mirrors
/// `criterion::Criterion`).
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free argument (not a flag, not the binary path) is a
        // name filter, like upstream.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            mode: detect_mode(),
            filter,
        }
    }
}

impl Criterion {
    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Defines and runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, body: F) -> &mut Self {
        if self.selected(id) {
            run_one(id, self.mode, 60, Duration::from_secs(3), body);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 60,
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Defines and runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        body: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.selected(&full) {
            run_one(
                &full,
                self.criterion.mode,
                self.sample_size,
                self.measurement_time,
                body,
            );
        }
        self
    }

    /// Defines and runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| body(b, input))
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running one or more benchmark groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut runs = 0;
        run_one("t", Mode::Smoke, 10, Duration::from_secs(1), |b| {
            b.iter(|| runs += 1);
        });
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("64x3x3").to_string(), "64x3x3");
        assert_eq!(BenchmarkId::new("dilute", 8).to_string(), "dilute/8");
    }

    #[test]
    fn group_chain_compiles_and_runs() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: None,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
