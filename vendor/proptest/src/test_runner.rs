//! The deterministic case runner behind the `proptest!` macro.

use crate::strategy::Strategy;

/// Deterministic generation source for one test function.
///
/// xoshiro256** seeded through SplitMix64, same construction as the
/// workspace's vendored `rand::rngs::StdRng` but independent of it so the
/// two crates stay decoupled.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        TestRng { s }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 mantissa bits.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How a test case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*` (or explicit failure) tripped.
    Fail(String),
    /// The case asked to be discarded (accepted for API parity; treated as
    /// a pass since this runner has no rejection budget).
    Reject(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds the rejection variant.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Default config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Drives a strategy through `cases` deterministic draws.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Builds a runner for one property.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs the property; panics (failing the enclosing `#[test]`) on the
    /// first failing case, reporting the generated input.
    ///
    /// Case `i` of property `name` is seeded from `hash(name) ^ i`, so
    /// runs are reproducible and distinct properties see distinct streams.
    pub fn run<S, F>(&mut self, name: &str, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let base = fnv1a(name.as_bytes());
        for case in 0..self.config.cases {
            let mut rng = TestRng::seed_from_u64(base ^ u64::from(case));
            let value = strategy.new_value(&mut rng);
            // Render before the move into the closure; on failure the
            // value is gone.
            let rendered = format!("{value:?}");
            match test(value) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "proptest case failed: {reason}\n  property: {name}\n  case: {case}/{}\n  input: {rendered}",
                        self.config.cases
                    );
                }
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn bare_type_args_work(x: u64) {
            prop_assert!(x.count_ones() <= 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            2 => (0u32..10).prop_map(|x| x * 2),
            1 => Just(99u32),
        ]) {
            prop_assert!(v == 99 || v < 20);
        }

        #[test]
        fn collections_respect_size(v in prop::collection::vec(0u8..255, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn weighted_option_generates_both(o in prop::option::weighted(0.5, 0i32..5)) {
            if let Some(x) = o {
                prop_assert!((0..5).contains(&x));
            }
        }
    }

    #[test]
    fn failing_case_reports_input() {
        let result = std::panic::catch_unwind(|| {
            let mut runner = super::TestRunner::new(super::ProptestConfig::with_cases(64));
            runner.run("always_fails", &(0u32..10,), |(_x,)| {
                Err(super::TestCaseError::fail("nope"))
            });
        });
        assert!(result.is_err());
    }
}
