//! Value-generation strategies.
//!
//! A [`Strategy`] knows how to draw one value of its `Value` type from a
//! [`TestRng`]. Unlike upstream proptest there is no value tree or
//! shrinking — a strategy is just a deterministic sampler.

use crate::test_runner::TestRng;

/// A source of generated test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Filters generated values, redrawing until `f` accepts one.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            f,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.new_value(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.whence
        );
    }
}

/// Weighted choice among strategies of a common value type (the target of
/// `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: std::fmt::Debug> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                start + (end - start) * rng.unit_f64() as $t
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 => 0);
tuple_strategy!(S0 => 0, S1 => 1);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7);
