//! Offline stand-in for the `proptest` 1.x API surface this workspace
//! uses.
//!
//! The build environment has no network access, so the workspace patches
//! `proptest` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It implements the `proptest!` macro, the strategy
//! combinators the repo's property tests use (ranges, tuples,
//! `prop::collection::vec`, `prop::option::weighted`, `prop_oneof!`,
//! `Just`, `prop_map`, `any`), a deterministic test runner, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: failing cases are reported with their fully
//! rendered inputs but are **not shrunk**, and generation is seeded
//! deterministically per case index (override the case count with
//! `PROPTEST_CASES`).

#![warn(missing_docs)]

pub mod strategy;

pub mod test_runner;

/// Arbitrary-value strategies (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy over the full range of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::weighted`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Some` with a fixed probability.
    #[derive(Debug, Clone)]
    pub struct WeightedOption<S> {
        probability: f64,
        inner: S,
    }

    /// `Option` strategy that is `Some(inner)` with probability
    /// `probability`.
    pub fn weighted<S: Strategy>(probability: f64, inner: S) -> WeightedOption<S> {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability out of range"
        );
        WeightedOption { probability, inner }
    }

    /// `Option` strategy that is `Some(inner)` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> WeightedOption<S> {
        weighted(0.75, inner)
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < self.probability {
                Some(self.inner.new_value(rng))
            } else {
                None
            }
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module alias so `prop::collection::vec(..)` etc. work after a glob
    /// import, as with upstream's prelude.
    pub mod prop {
        pub use crate::{arbitrary, collection, option, strategy};
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Discards the current case when a precondition does not hold. This
/// runner treats rejected cases as passes (no rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Weighted or unweighted union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strategy,)+);
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run(stringify!($name), &strategy, |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let strategy = ($($crate::arbitrary::any::<$ty>(),)+);
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run(stringify!($name), &strategy, |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}
